package network

import (
	"strings"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("0=localhost:7100,1=localhost:7101,2=localhost:7102")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "localhost:7100", 1: "localhost:7101", 2: "localhost:7102"}
	if len(peers) != len(want) {
		t.Fatalf("got %d peers, want %d", len(peers), len(want))
	}
	for id, addr := range want {
		if peers[id] != addr {
			t.Fatalf("peer %d = %q, want %q", id, peers[id], addr)
		}
	}
}

func TestParsePeersSkipsEmptyEntries(t *testing.T) {
	peers, err := ParsePeers(",0=h:1,,1=h:2,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("got %d peers, want 2", len(peers))
	}
	if peers, err := ParsePeers(""); err != nil || len(peers) != 0 {
		t.Fatalf("empty spec: got %v, %v; want empty map, nil", peers, err)
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []struct {
		spec, wantErr string
	}{
		{"0localhost:7100", "want id=host:port"},
		{"x=h:1", "bad peer id"},
		{"-1=h:1", "must be non-negative"},
		{"0=h:1,0=h:2", "duplicate peer id 0"},
		{"0=", "empty address"},
		{"0=  ", "empty address"},
	}
	for _, c := range cases {
		if _, err := ParsePeers(c.spec); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParsePeers(%q) = %v, want error containing %q", c.spec, err, c.wantErr)
		}
	}
}

func TestFormatPeersRoundTrip(t *testing.T) {
	spec := "0=h:1,2=h:3,7=h:9"
	peers, err := ParsePeers(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatPeers(peers); got != spec {
		t.Fatalf("FormatPeers = %q, want %q", got, spec)
	}
}
