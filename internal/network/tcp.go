package network

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/faults"
	"repro/internal/iterator"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// TCP transport: the claims-node daemon runs one TCPNode per process;
// nodes dial each other lazily and multiplex every exchange over a
// single connection pair per peer. Frames are length-prefixed:
//
//	uint32 frameLen | uint32 queryID | uint32 exchangeID |
//	uint32 destInstance | uint8 kind (0=data, 1=eof, 2=ack) |
//	uint32 srcNode | uint64 seq | uint32 checksum |
//	payload (encoded block)
//
// Every exchange is keyed by (queryID, exchangeID): plan exchange ids
// repeat across queries (and across concurrent queries), so the query
// id — process-unique on the submitting master — namespaces the whole
// dataflow. Concurrent queries on one node mesh never share an inbox,
// a sequence-number stream, or an abort channel.
//
// Every data/eof frame carries a per-stream sequence number (stream =
// query × exchange × destination instance × source node) and a CRC of
// its payload. The receiver applies each sequence number at most once,
// so retransmissions and injected duplicates never double-apply;
// corrupted frames fail the checksum and are dropped, forcing a
// retransmit.
//
// When a fault injector is attached (or a retry policy is forced), the
// node runs its reliable path: the receiver acknowledges every applied
// frame, and Send retransmits on ack timeout with exponential backoff
// plus jitter until the policy's deadline. Without an injector the wire
// is a healthy TCP socket, so Send stays fire-and-forget and pays no
// round trip.
//
// The receiving loop is the per-node "merging thread" of Appendix
// Algorithm 5: it keeps draining the socket into inboxes even while the
// consuming segments are fully shrunk. Acknowledgements are written
// BEFORE the (possibly blocking) inbox insert: the sender is
// synchronous per stream, so at most one unapplied frame per stream is
// in flight and backpressure propagates through the ack of the next
// frame — while acks themselves are never stuck behind a full inbox,
// which would deadlock two nodes exchanging data in both directions.
type TCPNode struct {
	id    int
	ln    net.Listener
	peers map[int]string // node id → address

	flts   atomic.Pointer[faults.Injector]
	retry  atomic.Pointer[RetryPolicy]
	forced atomic.Bool // reliable path on even without an injector
	epoch  atomic.Uint32

	mu       sync.Mutex
	conns    map[int]*tcpConn
	accepted []net.Conn
	inboxes  map[inboxKey]*Inbox
	schemas  map[exchangeKey]*types.Schema
	trackers map[exchangeKey]*block.Tracker
	scopes   map[exchangeKey]*telemetry.Scope
	streams  map[streamKey]uint64 // next expected seq per stream
	aborts   map[exchangeKey]chan struct{}
	closed   bool
	wg       sync.WaitGroup

	ackMu sync.Mutex
	acks  map[ackKey]chan struct{}
}

const (
	frameData = 0
	frameEOF  = 1
	frameAck  = 2
)

// headerLen is the fixed frame header: frameLen(4) query(4) exchange(4)
// inst(4) kind(1) srcNode(4) seq(8) checksum(4).
const headerLen = 4 + 4 + 4 + 4 + 1 + 4 + 8 + 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// exchangeKey identifies one query's exchange on a node: plan exchange
// ids repeat across queries, so every per-exchange structure is keyed
// by the pair.
type exchangeKey struct {
	query    int
	exchange int
}

type inboxKey struct {
	query    int
	exchange int
	instance int
}

type streamKey struct {
	query    int
	exchange int
	instance int
	src      int
}

type ackKey struct {
	query    int
	exchange int
	instance int
	seq      uint64
}

type tcpConn struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// NewTCPNode starts listening on addr as node id. peers maps every node
// id (including this one) to its dial address.
func NewTCPNode(id int, addr string, peers map[int]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id: id, ln: ln, peers: peers,
		conns:    make(map[int]*tcpConn),
		inboxes:  make(map[inboxKey]*Inbox),
		schemas:  make(map[exchangeKey]*types.Schema),
		trackers: make(map[exchangeKey]*block.Tracker),
		scopes:   make(map[exchangeKey]*telemetry.Scope),
		streams:  make(map[streamKey]uint64),
		aborts:   make(map[exchangeKey]chan struct{}),
		acks:     make(map[ackKey]chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// ID returns the node's id in the mesh.
func (n *TCPNode) ID() int { return n.id }

// SetPeer installs or updates the dial address of a peer node. A
// cached connection to an address that changed is dropped so the next
// send redials — this is how a membership view update rewires the
// fabric around a node that rejoined on a new ephemeral port.
func (n *TCPNode) SetPeer(id int, addr string) {
	n.mu.Lock()
	if n.peers == nil {
		n.peers = make(map[int]string)
	}
	var stale *tcpConn
	if c, ok := n.conns[id]; ok && n.peers[id] != addr {
		delete(n.conns, id)
		stale = c
	}
	n.peers[id] = addr
	n.mu.Unlock()
	if stale != nil {
		stale.c.Close()
	}
}

// DropPeer forgets a peer's address and closes any cached connection
// to it. Subsequent sends to the peer fail at dial time instead of
// waiting out TCP timeouts against a dead address.
func (n *TCPNode) DropPeer(id int) {
	n.mu.Lock()
	delete(n.peers, id)
	c, ok := n.conns[id]
	delete(n.conns, id)
	n.mu.Unlock()
	if ok {
		c.c.Close()
	}
}

// Peers returns a copy of the node's current peer address map.
func (n *TCPNode) Peers() map[int]string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[int]string, len(n.peers))
	for id, addr := range n.peers {
		out[id] = addr
	}
	return out
}

// OpenExchanges counts the per-exchange registrations the node still
// holds (inboxes, schemas, trackers, scopes, stream watermarks, abort
// channels). Zero after every query released its exchanges — tests and
// the /metrics surface use it to prove teardown leaves nothing behind.
func (n *TCPNode) OpenExchanges() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.inboxes) + len(n.schemas) + len(n.trackers) +
		len(n.scopes) + len(n.streams) + len(n.aborts)
}

// SetFaults attaches a fault injector consulted on every outgoing
// frame. Attach the SAME injector to every node of a mesh: an enabled
// injector switches the node into its reliable (ack + retransmit)
// protocol, and senders and receivers must agree on it.
func (n *TCPNode) SetFaults(j *faults.Injector) { n.flts.Store(j) }

// SetRetryPolicy overrides the reliable-send policy and forces the
// reliable protocol on even without a fault injector (tests use it to
// exercise retry paths against real peer failures).
func (n *TCPNode) SetRetryPolicy(p RetryPolicy) {
	p = p.withDefaults()
	n.retry.Store(&p)
	n.forced.Store(true)
}

func (n *TCPNode) faults() *faults.Injector { return n.flts.Load() }

func (n *TCPNode) policy() RetryPolicy {
	if p := n.retry.Load(); p != nil {
		return *p
	}
	return DefaultRetryPolicy
}

// reliable reports whether the node runs the ack + retransmit protocol.
func (n *TCPNode) reliable() bool {
	return n.forced.Load() || n.faults().Enabled()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.accepted = append(n.accepted, c)
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(c)
		}()
	}
}

// RegisterInbox declares that this node hosts consumer instance
// (query, exchange, instance) expecting nProducers streams with the
// given schema. Must be called before producers start sending.
func (n *TCPNode) RegisterInbox(query, exchange, instance, nProducers int,
	sch *types.Schema, bufBlocks int, tracker *block.Tracker) *Inbox {
	n.mu.Lock()
	defer n.mu.Unlock()
	in := newInbox(nProducers, bufBlocks, tracker)
	n.inboxes[inboxKey{query, exchange, instance}] = in
	n.schemas[exchangeKey{query, exchange}] = sch
	n.trackers[exchangeKey{query, exchange}] = tracker
	return in
}

// SetExchangeScope attaches the telemetry scope receiver-side events of
// an exchange (duplicate suppression, corrupt-frame drops) are counted
// on.
func (n *TCPNode) SetExchangeScope(query, exchange int, sc *telemetry.Scope) {
	n.mu.Lock()
	n.scopes[exchangeKey{query, exchange}] = sc
	n.mu.Unlock()
}

// AbortExchange abandons one query's exchange: pending reliable sends
// fail immediately, future sends fail fast, and the exchange's inboxes
// on this node unblock and discard. The engine calls it on every node
// when a query errors, so no goroutine stays wedged on a dead dataflow.
// Other queries' exchanges — same plan exchange id included — are
// untouched.
func (n *TCPNode) AbortExchange(query, exchange int) {
	ek := exchangeKey{query, exchange}
	n.mu.Lock()
	ch, ok := n.aborts[ek]
	if !ok {
		ch = make(chan struct{})
		n.aborts[ek] = ch
	}
	select {
	case <-ch:
	default:
		close(ch)
	}
	var ins []*Inbox
	for k, in := range n.inboxes {
		if k.query == query && k.exchange == exchange {
			ins = append(ins, in)
		}
	}
	n.mu.Unlock()
	for _, in := range ins {
		in.Abandon()
	}
}

// ReleaseExchange drops every per-exchange structure of (query,
// exchange) — inboxes, schema, tracker, scope, stream watermarks and
// the abort channel. The engine releases each exchange when its query
// completes; without this a long-lived serving node accretes one map
// entry per stream per query forever.
func (n *TCPNode) ReleaseExchange(query, exchange int) {
	ek := exchangeKey{query, exchange}
	n.mu.Lock()
	for k := range n.inboxes {
		if k.query == query && k.exchange == exchange {
			delete(n.inboxes, k)
		}
	}
	for k := range n.streams {
		if k.query == query && k.exchange == exchange {
			delete(n.streams, k)
		}
	}
	delete(n.schemas, ek)
	delete(n.trackers, ek)
	delete(n.scopes, ek)
	delete(n.aborts, ek)
	n.mu.Unlock()
}

// abortCh returns the exchange's abort channel, creating it open.
func (n *TCPNode) abortCh(query, exchange int) chan struct{} {
	ek := exchangeKey{query, exchange}
	n.mu.Lock()
	defer n.mu.Unlock()
	ch, ok := n.aborts[ek]
	if !ok {
		ch = make(chan struct{})
		n.aborts[ek] = ch
	}
	return ch
}

func (n *TCPNode) inbox(query, exchange, instance int) (*Inbox, *types.Schema, *block.Tracker, *telemetry.Scope, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	in, ok := n.inboxes[inboxKey{query, exchange, instance}]
	if !ok {
		return nil, nil, nil, nil, fmt.Errorf("network: no inbox for query %d exchange %d instance %d", query, exchange, instance)
	}
	ek := exchangeKey{query, exchange}
	return in, n.schemas[ek], n.trackers[ek], n.scopes[ek], nil
}

// applyOnce reports whether the frame (stream, seq) should be applied:
// it advances the stream watermark exactly once per sequence number.
// The sender is synchronous per stream, so frames arrive in order and
// any seq below the watermark is a duplicate (retransmit racing a late
// ack, or an injected duplicate).
func (n *TCPNode) applyOnce(k streamKey, seq uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if next, ok := n.streams[k]; ok && seq < next {
		return false
	}
	n.streams[k] = seq + 1
	return true
}

func (n *TCPNode) readLoop(c net.Conn) {
	defer c.Close()
	r := bufio.NewReaderSize(c, 1<<20)
	var hdr [headerLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		frameLen := binary.LittleEndian.Uint32(hdr[0:])
		query := int(binary.LittleEndian.Uint32(hdr[4:]))
		exID := int(binary.LittleEndian.Uint32(hdr[8:]))
		inst := int(binary.LittleEndian.Uint32(hdr[12:]))
		kind := hdr[16]
		src := int(int32(binary.LittleEndian.Uint32(hdr[17:])))
		seq := binary.LittleEndian.Uint64(hdr[21:])
		sum := binary.LittleEndian.Uint32(hdr[29:])
		payload := make([]byte, frameLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}

		if kind == frameAck {
			n.dispatchAck(ackKey{query, exID, inst, seq})
			continue
		}
		in, sch, trk, scope, err := n.inbox(query, exID, inst)
		if err != nil {
			continue // stray frame for an unregistered exchange
		}
		if crc32.Checksum(payload, crcTable) != sum {
			// Corrupted in transit: drop without acking so the sender
			// retransmits. This is the recovery path injected Corrupt
			// faults exercise.
			if scope != nil {
				scope.Counter(telemetry.CtrNetCorruptDropped).Inc()
			}
			continue
		}
		sk := streamKey{query, exID, inst, src}
		if !n.applyOnce(sk, seq) {
			// Duplicate: suppress, but re-acknowledge — the original ack
			// may have been lost to the sender's timeout.
			if scope != nil {
				scope.Counter(telemetry.CtrNetDupDropped).Inc()
				scope.Emit(telemetry.Recovery{Node: n.id, Action: "dup-drop"})
			}
			n.sendAck(src, query, exID, inst, seq)
			continue
		}
		// Ack before the (possibly blocking) inbox insert; see the type
		// comment for why this ordering is deadlock-free and still
		// backpressured.
		n.sendAck(src, query, exID, inst, seq)
		switch kind {
		case frameEOF:
			in.producerDone()
		case frameData:
			b, err := block.Decode(sch, payload, trk)
			if err == nil {
				in.put(b)
			}
		}
	}
}

// sendAck acknowledges frame (query, exchange, inst, seq) back to the
// source node. Only meaningful under the reliable protocol; otherwise
// no one is waiting, so skip the reverse traffic.
func (n *TCPNode) sendAck(src, query, exchange, inst int, seq uint64) {
	if !n.reliable() {
		return
	}
	c, err := n.conn(src)
	if err != nil {
		return // the sender will time out and retransmit
	}
	if err := c.send(query, exchange, inst, frameAck, n.id, seq, 0, nil); err != nil {
		n.dropConn(src, c)
	}
}

// registerAck installs a waiter channel for the frame's ack.
func (n *TCPNode) registerAck(k ackKey) chan struct{} {
	ch := make(chan struct{})
	n.ackMu.Lock()
	n.acks[k] = ch
	n.ackMu.Unlock()
	return ch
}

func (n *TCPNode) unregisterAck(k ackKey) {
	n.ackMu.Lock()
	delete(n.acks, k)
	n.ackMu.Unlock()
}

// dispatchAck wakes the waiter of an arrived ack; duplicate acks (from
// re-acked retransmissions) find no waiter and are ignored.
func (n *TCPNode) dispatchAck(k ackKey) {
	n.ackMu.Lock()
	ch, ok := n.acks[k]
	if ok {
		delete(n.acks, k)
	}
	n.ackMu.Unlock()
	if ok {
		close(ch)
	}
}

func (n *TCPNode) conn(peer int) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[peer]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, known := n.peers[peer]
	n.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("network: no address for node %d (dropped from the peer set?)", peer)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: dial node %d (%s): %w", peer, addr, err)
	}
	c := &tcpConn{c: raw, w: bufio.NewWriterSize(raw, 1<<20)}
	n.mu.Lock()
	defer n.mu.Unlock()
	if prev, ok := n.conns[peer]; ok {
		raw.Close()
		return prev, nil
	}
	n.conns[peer] = c
	return c, nil
}

// dropConn invalidates a cached connection after a write error so the
// next attempt redials instead of reusing a dead socket.
func (n *TCPNode) dropConn(peer int, c *tcpConn) {
	n.mu.Lock()
	if cur, ok := n.conns[peer]; ok && cur == c {
		delete(n.conns, peer)
	}
	n.mu.Unlock()
	c.c.Close()
}

func (c *tcpConn) send(query, exID, inst int, kind byte, src int, seq uint64, sum uint32, payload []byte) error {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(query))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(exID))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(inst))
	hdr[16] = kind
	binary.LittleEndian.PutUint32(hdr[17:], uint32(src))
	binary.LittleEndian.PutUint64(hdr[21:], seq)
	binary.LittleEndian.PutUint32(hdr[29:], sum)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// TCPOutbox is the producer side of an exchange over TCP.
type TCPOutbox struct {
	node          *TCPNode
	query         int
	exchange      int
	consumerNodes []int // node id per destination instance
	buf           []byte
	seqs          []uint64 // next seq per destination
	scope         *telemetry.Scope
}

// NewOutbox creates an outbox sending from this node to the consumer
// instances of (query, exchange) located on the given nodes. Sequence
// numbers are based on a node-wide epoch so streams of consecutive
// queries reusing an exchange id never collide even before the query
// id is taken into account.
func (n *TCPNode) NewOutbox(query, exchange int, consumerNodes []int) *TCPOutbox {
	base := uint64(n.epoch.Add(1)) << 32
	seqs := make([]uint64, len(consumerNodes))
	for i := range seqs {
		seqs[i] = base
	}
	return &TCPOutbox{node: n, query: query, exchange: exchange, consumerNodes: consumerNodes, seqs: seqs}
}

// SetScope attaches the telemetry scope sender-side events (injected
// faults, retries) are recorded on.
func (o *TCPOutbox) SetScope(sc *telemetry.Scope) { o.scope = sc }

// Destinations implements iterator.Outbox.
func (o *TCPOutbox) Destinations() int { return len(o.consumerNodes) }

// Send implements iterator.Outbox.
func (o *TCPOutbox) Send(dest int, b *block.Block) error {
	o.buf = b.Encode(o.buf)
	return o.sendFrame(dest, frameData, o.buf)
}

// CloseSend implements iterator.Outbox. End-of-stream markers ride the
// same reliable path as data frames.
func (o *TCPOutbox) CloseSend() error {
	for dest := range o.consumerNodes {
		if err := o.sendFrame(dest, frameEOF, nil); err != nil {
			return err
		}
	}
	return nil
}

// sendFrame ships one frame to dest. On the reliable path it consults
// the fault injector per attempt, waits for the receiver's ack with
// exponential backoff + jitter, and retransmits until acknowledged or
// the retry policy's budget is exhausted.
func (o *TCPOutbox) sendFrame(dest int, kind byte, payload []byte) error {
	n := o.node
	peer := o.consumerNodes[dest]
	seq := o.seqs[dest]
	o.seqs[dest]++
	sum := crc32.Checksum(payload, crcTable)

	if !n.reliable() {
		// Fire-and-forget fast path: the socket is trustworthy, pay no
		// round trip.
		c, err := n.conn(peer)
		if err != nil {
			return err
		}
		if err := c.send(o.query, o.exchange, dest, kind, n.id, seq, sum, payload); err != nil {
			n.dropConn(peer, c)
			return err
		}
		return nil
	}

	inj := n.faults()
	pol := n.policy()
	deadline := time.Now().Add(pol.Deadline)
	ak := ackKey{o.query, o.exchange, dest, seq}
	ackCh := n.registerAck(ak)
	defer n.unregisterAck(ak)
	abort := n.abortCh(o.query, o.exchange)

	for attempt := 0; ; attempt++ {
		select {
		case <-abort:
			return fmt.Errorf("network: exchange %d aborted", o.exchange)
		default:
		}
		if inj.Severed(n.id, peer) {
			o.emitFault(telemetry.FaultInjected{
				Site: "link", Fault: "sever", From: n.id, To: peer,
				Exchange: o.exchange, Seq: seq,
			})
			return fmt.Errorf("network: link %d->%d severed", n.id, peer)
		}

		var v faults.FrameVerdict
		if peer != n.id {
			v = inj.Frame(n.id, peer, o.exchange, seq, attempt)
		}
		if v.Delay > 0 {
			o.emitFault(telemetry.FaultInjected{
				Site: "link", Fault: "delay", From: n.id, To: peer,
				Exchange: o.exchange, Seq: seq, Delay: v.Delay,
			})
			time.Sleep(v.Delay)
		}
		cause := "timeout"
		if v.Drop {
			o.emitFault(telemetry.FaultInjected{
				Site: "link", Fault: "drop", From: n.id, To: peer,
				Exchange: o.exchange, Seq: seq,
			})
			// The frame never reaches the wire; the ack timeout below
			// turns into a retransmission.
		} else {
			wire := payload
			if v.Corrupt {
				wire = append([]byte(nil), payload...)
				if len(wire) > 0 {
					wire[len(wire)/2] ^= 0xA5
				} else {
					// A corrupted empty frame: poison the checksum instead.
					sum ^= 0xDEAD
				}
				o.emitFault(telemetry.FaultInjected{
					Site: "link", Fault: "corrupt", From: n.id, To: peer,
					Exchange: o.exchange, Seq: seq,
				})
			}
			c, err := n.conn(peer)
			if err != nil {
				cause = "dial"
			} else if err := c.send(o.query, o.exchange, dest, kind, n.id, seq, sum, wire); err != nil {
				n.dropConn(peer, c)
				cause = "write"
			} else if v.Dup {
				o.emitFault(telemetry.FaultInjected{
					Site: "link", Fault: "dup", From: n.id, To: peer,
					Exchange: o.exchange, Seq: seq,
				})
				_ = c.send(o.query, o.exchange, dest, kind, n.id, seq, sum, wire)
			}
			if v.Corrupt && len(payload) == 0 {
				sum = crc32.Checksum(payload, crcTable) // restore for retries
			}
		}

		wait := pol.Timeout(attempt, seq*0x9e3779b97f4a7c15+uint64(attempt))
		timer := time.NewTimer(wait)
		select {
		case <-ackCh:
			timer.Stop()
			return nil
		case <-abort:
			timer.Stop()
			return fmt.Errorf("network: exchange %d aborted", o.exchange)
		case <-timer.C:
		}
		if (pol.MaxAttempts > 0 && attempt+1 >= pol.MaxAttempts) || time.Now().After(deadline) {
			return fmt.Errorf("network: send to node %d (exchange %d, seq %d) unacknowledged after %d attempts (last cause: %s)",
				peer, o.exchange, seq, attempt+1, cause)
		}
		if o.scope != nil {
			o.scope.Counter(telemetry.CtrNetRetries).Inc()
			o.scope.Emit(telemetry.NetRetry{
				Exchange: o.exchange, From: n.id, To: peer, Seq: seq,
				Attempt: attempt + 1, Backoff: wait, Cause: cause,
			})
		}
	}
}

func (o *TCPOutbox) emitFault(rec telemetry.FaultInjected) {
	if o.scope == nil {
		return
	}
	o.scope.Counter(telemetry.CtrFaultsInjected).Inc()
	o.scope.Emit(rec)
}

// Close shuts the node down, closing the listener and all connections.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := n.conns
	accepted := n.accepted
	n.conns = make(map[int]*tcpConn)
	n.accepted = nil
	aborts := n.aborts
	n.aborts = make(map[exchangeKey]chan struct{})
	n.mu.Unlock()
	// Fail pending reliable sends so no Send outlives the node.
	for _, ch := range aborts {
		select {
		case <-ch:
		default:
			close(ch)
		}
	}
	n.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	n.wg.Wait()
}

var _ iterator.Outbox = (*TCPOutbox)(nil)
