package network

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/block"
	"repro/internal/iterator"
	"repro/internal/types"
)

// TCP transport: the claims-node daemon runs one TCPNode per process;
// nodes dial each other lazily and multiplex every exchange over a
// single connection pair per peer. Frames are length-prefixed:
//
//	uint32 frameLen | uint32 exchangeID | uint32 destInstance |
//	uint8  kind (0=data, 1=eof) | payload (encoded block)
//
// The receiving loop is the per-node "merging thread" of Appendix
// Algorithm 5: it keeps draining the socket into inboxes even while the
// consuming segments are fully shrunk.

const (
	frameData = 0
	frameEOF  = 1
)

// TCPNode is one process's endpoint in a TCP-connected cluster.
type TCPNode struct {
	id    int
	ln    net.Listener
	peers map[int]string // node id → address

	mu       sync.Mutex
	conns    map[int]*tcpConn
	accepted []net.Conn
	inboxes  map[inboxKey]*Inbox
	schemas  map[int]*types.Schema
	trackers map[int]*block.Tracker
	closed   bool
	wg       sync.WaitGroup
}

type inboxKey struct {
	exchange int
	instance int
}

type tcpConn struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// NewTCPNode starts listening on addr as node id. peers maps every node
// id (including this one) to its dial address.
func NewTCPNode(id int, addr string, peers map[int]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id: id, ln: ln, peers: peers,
		conns:    make(map[int]*tcpConn),
		inboxes:  make(map[inboxKey]*Inbox),
		schemas:  make(map[int]*types.Schema),
		trackers: make(map[int]*block.Tracker),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.accepted = append(n.accepted, c)
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(c)
		}()
	}
}

// RegisterInbox declares that this node hosts consumer instance
// (exchange, instance) expecting nProducers streams with the given
// schema. Must be called before producers start sending.
func (n *TCPNode) RegisterInbox(exchange, instance, nProducers int,
	sch *types.Schema, bufBlocks int, tracker *block.Tracker) *Inbox {
	n.mu.Lock()
	defer n.mu.Unlock()
	in := newInbox(nProducers, bufBlocks, tracker)
	n.inboxes[inboxKey{exchange, instance}] = in
	n.schemas[exchange] = sch
	n.trackers[exchange] = tracker
	return in
}

func (n *TCPNode) inbox(exchange, instance int) (*Inbox, *types.Schema, *block.Tracker, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	in, ok := n.inboxes[inboxKey{exchange, instance}]
	if !ok {
		return nil, nil, nil, fmt.Errorf("network: no inbox for exchange %d instance %d", exchange, instance)
	}
	return in, n.schemas[exchange], n.trackers[exchange], nil
}

func (n *TCPNode) readLoop(c net.Conn) {
	defer c.Close()
	r := bufio.NewReaderSize(c, 1<<20)
	var hdr [13]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		frameLen := binary.LittleEndian.Uint32(hdr[0:])
		exID := int(binary.LittleEndian.Uint32(hdr[4:]))
		inst := int(binary.LittleEndian.Uint32(hdr[8:]))
		kind := hdr[12]
		payload := make([]byte, frameLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		in, sch, trk, err := n.inbox(exID, inst)
		if err != nil {
			continue // stray frame for an unregistered exchange
		}
		switch kind {
		case frameEOF:
			in.producerDone()
		case frameData:
			b, err := block.Decode(sch, payload, trk)
			if err == nil {
				in.put(b)
			}
		}
	}
}

func (n *TCPNode) conn(peer int) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[peer]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr := n.peers[peer]
	n.mu.Unlock()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: dial node %d (%s): %w", peer, addr, err)
	}
	c := &tcpConn{c: raw, w: bufio.NewWriterSize(raw, 1<<20)}
	n.mu.Lock()
	defer n.mu.Unlock()
	if prev, ok := n.conns[peer]; ok {
		raw.Close()
		return prev, nil
	}
	n.conns[peer] = c
	return c, nil
}

func (c *tcpConn) send(exID, inst int, kind byte, payload []byte) error {
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(exID))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(inst))
	hdr[12] = kind
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// TCPOutbox is the producer side of an exchange over TCP.
type TCPOutbox struct {
	node          *TCPNode
	exchange      int
	consumerNodes []int // node id per destination instance
	buf           []byte
}

// NewOutbox creates an outbox sending from this node to the consumer
// instances located on the given nodes.
func (n *TCPNode) NewOutbox(exchange int, consumerNodes []int) *TCPOutbox {
	return &TCPOutbox{node: n, exchange: exchange, consumerNodes: consumerNodes}
}

// Destinations implements iterator.Outbox.
func (o *TCPOutbox) Destinations() int { return len(o.consumerNodes) }

// Send implements iterator.Outbox.
func (o *TCPOutbox) Send(dest int, b *block.Block) error {
	c, err := o.node.conn(o.consumerNodes[dest])
	if err != nil {
		return err
	}
	o.buf = b.Encode(o.buf)
	return c.send(o.exchange, dest, frameData, o.buf)
}

// CloseSend implements iterator.Outbox.
func (o *TCPOutbox) CloseSend() error {
	for dest, peer := range o.consumerNodes {
		c, err := o.node.conn(peer)
		if err != nil {
			return err
		}
		if err := c.send(o.exchange, dest, frameEOF, nil); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the node down, closing the listener and all connections.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := n.conns
	accepted := n.accepted
	n.conns = make(map[int]*tcpConn)
	n.accepted = nil
	n.mu.Unlock()
	n.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	n.wg.Wait()
}

var _ iterator.Outbox = (*TCPOutbox)(nil)
