package network

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/faults"
	"repro/internal/iterator"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// TCP transport: the claims-node daemon runs one TCPNode per process.
// Wire protocol v2 (wire.go) coalesces frames into batches — one write
// syscall per batch — and multiplexes each peer pair over a small fixed
// pool of connections (conn.go) dialed ahead of traffic at SetPeer
// time. A per-node transmit scheduler (flow.go) rotates the wire across
// active (query, exchange) flows so one wide shuffle cannot
// incast-starve the rest; the waiting is surfaced as net.stall_ns.
//
// Every exchange is keyed by (queryID, exchangeID): plan exchange ids
// repeat across queries (and across concurrent queries), so the query
// id — process-unique on the submitting master — namespaces the whole
// dataflow. Concurrent queries on one node mesh never share an inbox,
// a sequence-number stream, or an abort channel.
//
// Every data/eof frame carries a per-stream sequence number (stream =
// query × exchange × destination instance × source node) and a CRC of
// its payload. The receiver applies frames strictly in sequence order,
// so retransmissions and injected duplicates never double-apply and a
// frame lost inside a sender's window never lets its successors jump
// the gap; corrupted frames fail the checksum and are dropped, forcing
// a retransmit.
//
// When a fault injector is attached (or a retry policy is forced), the
// node runs its reliable path: a per-stream sliding window
// (window.go) keeps up to WireConfig.Window frames in flight, the
// receiver acknowledges cumulatively, and a pump goroutine retransmits
// go-back-N from the oldest unacked frame on timeout. Without an
// injector the wire is a healthy TCP socket, so Send stays
// fire-and-forget and pays no round trip.
//
// The receiving loop is the per-node "merging thread" of Appendix
// Algorithm 5: it keeps draining the socket into inboxes even while the
// consuming segments are fully shrunk. Acknowledgements recorded while
// a batch is processed are flushed BEFORE any blocking inbox insert:
// backpressure propagates to senders through withheld window space,
// while acks themselves are never stuck behind a full inbox — which
// would deadlock two nodes exchanging data in both directions.
type TCPNode struct {
	id    int
	ln    net.Listener
	peers map[int]string // node id → address

	flts   atomic.Pointer[faults.Injector]
	retry  atomic.Pointer[RetryPolicy]
	forced atomic.Bool // reliable path on even without an injector
	epoch  atomic.Uint32
	wcfg   atomic.Pointer[WireConfig]

	flow flowScheduler

	statBatches atomic.Int64
	statFrames  atomic.Int64
	statBytes   atomic.Int64
	statStallNs atomic.Int64
	statAckErrs atomic.Int64

	mu       sync.Mutex
	pools    map[int]*connPool
	accepted []net.Conn
	inboxes  map[inboxKey]*Inbox
	schemas  map[exchangeKey]*types.Schema
	trackers map[exchangeKey]*block.Tracker
	scopes   map[exchangeKey]*telemetry.Scope
	streams  map[streamKey]uint64 // next expected seq per stream
	aborts   map[exchangeKey]chan struct{}
	stagers  map[stageKey]*stager
	closed   bool
	wg       sync.WaitGroup

	winMu sync.Mutex
	wins  map[winKey]*sendWindow
}

// exchangeKey identifies one query's exchange on a node: plan exchange
// ids repeat across queries, so every per-exchange structure is keyed
// by the pair.
type exchangeKey struct {
	query    int
	exchange int
}

type inboxKey struct {
	query    int
	exchange int
	instance int
}

type streamKey struct {
	query    int
	exchange int
	instance int
	src      int
}

// NewTCPNode starts listening on addr as node id. peers maps every node
// id (including this one) to its dial address; the listed peers are
// pre-dialed so connection setup is charged to startup, not to the
// first Send of a query.
func NewTCPNode(id int, addr string, peers map[int]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id: id, ln: ln, peers: peers,
		pools:    make(map[int]*connPool),
		inboxes:  make(map[inboxKey]*Inbox),
		schemas:  make(map[exchangeKey]*types.Schema),
		trackers: make(map[exchangeKey]*block.Tracker),
		scopes:   make(map[exchangeKey]*telemetry.Scope),
		streams:  make(map[streamKey]uint64),
		aborts:   make(map[exchangeKey]chan struct{}),
		stagers:  make(map[stageKey]*stager),
		wins:     make(map[winKey]*sendWindow),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	for pid, paddr := range peers {
		n.SetPeer(pid, paddr)
	}
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// ID returns the node's id in the mesh.
func (n *TCPNode) ID() int { return n.id }

// SetWireConfig tunes the wire layer (connection pool size, send
// window, coalescing). Call before traffic flows; connection pools
// already dialed keep their size.
func (n *TCPNode) SetWireConfig(c WireConfig) {
	c = c.withDefaults()
	n.wcfg.Store(&c)
}

func (n *TCPNode) wireCfg() WireConfig {
	if p := n.wcfg.Load(); p != nil {
		return *p
	}
	return DefaultWireConfig
}

// NetStats reports node-lifetime wire totals: batches written, frames
// they carried, bytes on the wire, cumulative transmit-scheduler stall,
// and ack writes lost after retry. frames/batches is the realized
// coalescing factor.
func (n *TCPNode) NetStats() (batches, frames, bytes int64, stall time.Duration, ackErrs int64) {
	return n.statBatches.Load(), n.statFrames.Load(), n.statBytes.Load(),
		time.Duration(n.statStallNs.Load()), n.statAckErrs.Load()
}

// SetPeer installs or updates the dial address of a peer node and
// pre-dials its connection pool in the background. A pool dialed to an
// address that changed is dropped and redialed — this is how a
// membership view update rewires the fabric around a node that rejoined
// on a new ephemeral port.
func (n *TCPNode) SetPeer(id int, addr string) {
	n.mu.Lock()
	if n.peers == nil {
		n.peers = make(map[int]string)
	}
	var stale *connPool
	if p, ok := n.pools[id]; ok && n.peers[id] != addr {
		delete(n.pools, id)
		stale = p
	}
	n.peers[id] = addr
	if _, ok := n.pools[id]; !ok && !n.closed {
		p := newConnPool(id, addr, n.wireCfg().PoolSize)
		n.pools[id] = p
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			for _, pc := range p.slots {
				pc.predial(addr, id)
			}
		}()
	}
	n.mu.Unlock()
	if stale != nil {
		stale.closeAll()
	}
}

// DropPeer forgets a peer's address and closes its connection pool.
// Subsequent sends to the peer fail at dial time instead of waiting out
// TCP timeouts against a dead address.
func (n *TCPNode) DropPeer(id int) {
	n.mu.Lock()
	delete(n.peers, id)
	p, ok := n.pools[id]
	delete(n.pools, id)
	n.mu.Unlock()
	if ok {
		p.closeAll()
	}
}

// Peers returns a copy of the node's current peer address map.
func (n *TCPNode) Peers() map[int]string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[int]string, len(n.peers))
	for id, addr := range n.peers {
		out[id] = addr
	}
	return out
}

// OpenExchanges counts the per-exchange registrations the node still
// holds (inboxes, schemas, trackers, scopes, stream watermarks, abort
// channels, stagers, send windows). Zero after every query released its
// exchanges — tests and the /metrics surface use it to prove teardown
// leaves nothing behind.
func (n *TCPNode) OpenExchanges() int {
	n.winMu.Lock()
	nw := len(n.wins)
	n.winMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.inboxes) + len(n.schemas) + len(n.trackers) +
		len(n.scopes) + len(n.streams) + len(n.aborts) + len(n.stagers) + nw
}

// SetFaults attaches a fault injector consulted on every outgoing
// frame. Attach the SAME injector to every node of a mesh: an enabled
// injector switches the node into its reliable (windowed ack +
// retransmit) protocol, and senders and receivers must agree on it.
func (n *TCPNode) SetFaults(j *faults.Injector) { n.flts.Store(j) }

// SetRetryPolicy overrides the reliable-send policy and forces the
// reliable protocol on even without a fault injector (tests use it to
// exercise retry paths against real peer failures).
func (n *TCPNode) SetRetryPolicy(p RetryPolicy) {
	p = p.withDefaults()
	n.retry.Store(&p)
	n.forced.Store(true)
}

func (n *TCPNode) faults() *faults.Injector { return n.flts.Load() }

func (n *TCPNode) policy() RetryPolicy {
	if p := n.retry.Load(); p != nil {
		return *p
	}
	return DefaultRetryPolicy
}

// reliable reports whether the node runs the windowed ack + retransmit
// protocol.
func (n *TCPNode) reliable() bool {
	return n.forced.Load() || n.faults().Enabled()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.accepted = append(n.accepted, c)
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(c)
		}()
	}
}

// RegisterInbox declares that this node hosts consumer instance
// (query, exchange, instance) expecting nProducers streams with the
// given schema. Must be called before producers start sending.
func (n *TCPNode) RegisterInbox(query, exchange, instance, nProducers int,
	sch *types.Schema, bufBlocks int, tracker *block.Tracker) *Inbox {
	n.mu.Lock()
	defer n.mu.Unlock()
	in := newInbox(nProducers, bufBlocks, tracker)
	n.inboxes[inboxKey{query, exchange, instance}] = in
	n.schemas[exchangeKey{query, exchange}] = sch
	n.trackers[exchangeKey{query, exchange}] = tracker
	return in
}

// SetExchangeScope attaches the telemetry scope receiver-side events of
// an exchange (duplicate suppression, corrupt-frame drops, ack-write
// failures) are counted on.
func (n *TCPNode) SetExchangeScope(query, exchange int, sc *telemetry.Scope) {
	n.mu.Lock()
	n.scopes[exchangeKey{query, exchange}] = sc
	n.mu.Unlock()
}

// AbortExchange abandons one query's exchange: pending reliable sends
// fail immediately, future sends fail fast, and the exchange's inboxes
// on this node unblock and discard. The engine calls it on every node
// when a query errors, so no goroutine stays wedged on a dead dataflow.
// Other queries' exchanges — same plan exchange id included — are
// untouched.
func (n *TCPNode) AbortExchange(query, exchange int) {
	ek := exchangeKey{query, exchange}
	n.mu.Lock()
	ch, ok := n.aborts[ek]
	if !ok {
		ch = make(chan struct{})
		n.aborts[ek] = ch
	}
	select {
	case <-ch:
	default:
		close(ch)
	}
	var ins []*Inbox
	for k, in := range n.inboxes {
		if k.query == query && k.exchange == exchange {
			ins = append(ins, in)
		}
	}
	n.mu.Unlock()
	n.winMu.Lock()
	var ws []*sendWindow
	for k, w := range n.wins {
		if k.query == query && k.exchange == exchange {
			ws = append(ws, w)
		}
	}
	n.winMu.Unlock()
	for _, w := range ws {
		w.fail(fmt.Errorf("network: exchange %d aborted", exchange))
	}
	for _, in := range ins {
		in.Abandon()
	}
}

// ReleaseExchange drops every per-exchange structure of (query,
// exchange) — inboxes, schema, tracker, scope, stream watermarks,
// abort channel, stagers and any leftover send windows. The engine
// releases each exchange when its query completes; without this a
// long-lived serving node accretes one map entry per stream per query
// forever.
func (n *TCPNode) ReleaseExchange(query, exchange int) {
	ek := exchangeKey{query, exchange}
	n.mu.Lock()
	for k := range n.inboxes {
		if k.query == query && k.exchange == exchange {
			delete(n.inboxes, k)
		}
	}
	for k := range n.streams {
		if k.query == query && k.exchange == exchange {
			delete(n.streams, k)
		}
	}
	var sts []*stager
	for k, s := range n.stagers {
		if k.query == query && k.exchange == exchange {
			sts = append(sts, s)
			delete(n.stagers, k)
		}
	}
	delete(n.schemas, ek)
	delete(n.trackers, ek)
	delete(n.scopes, ek)
	delete(n.aborts, ek)
	n.mu.Unlock()
	n.winMu.Lock()
	for k := range n.wins {
		if k.query == query && k.exchange == exchange {
			delete(n.wins, k)
		}
	}
	n.winMu.Unlock()
	for _, s := range sts {
		s.discard()
	}
}

// abortCh returns the exchange's abort channel, creating it open.
func (n *TCPNode) abortCh(query, exchange int) chan struct{} {
	ek := exchangeKey{query, exchange}
	n.mu.Lock()
	defer n.mu.Unlock()
	ch, ok := n.aborts[ek]
	if !ok {
		ch = make(chan struct{})
		n.aborts[ek] = ch
	}
	return ch
}

func (n *TCPNode) inbox(query, exchange, instance int) (*Inbox, *types.Schema, *block.Tracker, *telemetry.Scope, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	in, ok := n.inboxes[inboxKey{query, exchange, instance}]
	if !ok {
		return nil, nil, nil, nil, fmt.Errorf("network: no inbox for query %d exchange %d instance %d", query, exchange, instance)
	}
	ek := exchangeKey{query, exchange}
	return in, n.schemas[ek], n.trackers[ek], n.scopes[ek], nil
}

// applyVerdict classifies one arriving frame against its stream's
// watermark.
type applyVerdict int

const (
	applyApply  applyVerdict = iota // in order: apply and advance
	applyDup                        // below the watermark: suppress, re-ack
	applyGap                        // beyond the watermark: discard, re-ack
	applyIgnore                     // mid-stream frame of an unknown stream
)

// applyOnce decides one frame's fate and advances the stream watermark
// when it is applied. Frames apply strictly in sequence order: under
// the windowed sender a dropped frame leaves a gap, and frames behind
// the gap are discarded (go-back-N re-delivers them in order) instead
// of applied early — the discard is what keeps "applied" equal to "all
// predecessors applied", which the cumulative ack asserts. Outbox
// sequence bases are node-wide epochs shifted left 32 bits, so the
// first frame of any stream has zero low bits; that is how a fresh
// stream reusing a released stream key is told apart from a gap.
func (n *TCPNode) applyOnce(k streamKey, seq uint64) (applyVerdict, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	next, ok := n.streams[k]
	switch {
	case !ok:
		if seq&0xffffffff != 0 {
			// The stream's earlier frames were lost (or it was released
			// mid-flight): wait for a retransmission from its start.
			return applyIgnore, 0
		}
		n.streams[k] = seq + 1
		return applyApply, seq
	case seq == next:
		n.streams[k] = seq + 1
		return applyApply, seq
	case seq < next:
		return applyDup, next - 1
	case seq&0xffffffff == 0:
		// A new epoch's stream start on a reused key.
		n.streams[k] = seq + 1
		return applyApply, seq
	default:
		return applyGap, next - 1
	}
}

// readLoop drains one accepted connection batch by batch. Each batch is
// read with a single ReadFull into a pooled arena buffer and its frames
// are handled in place; a malformed batch (bad magic, inconsistent
// lengths) means the stream is desynchronized and the connection is
// dropped — peers redial.
func (n *TCPNode) readLoop(c net.Conn) {
	defer c.Close()
	r := bufio.NewReaderSize(c, 256<<10)
	var bh [batchHdrLen]byte
	acks := make(map[streamKey]uint64)
	for {
		if _, err := io.ReadFull(r, bh[:]); err != nil {
			return
		}
		payloadLen, nFrames, err := parseBatchHeader(bh[:])
		if err != nil {
			return
		}
		payload := block.GetBuf(payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			block.PutBuf(payload)
			return
		}
		err = walkBatch(payload, nFrames, func(h frameHeader, pl []byte) error {
			n.handleFrame(h, pl, acks)
			return nil
		})
		n.flushAcks(acks)
		block.PutBuf(payload)
		if err != nil {
			return
		}
	}
}

// handleFrame processes one frame of a batch. Cumulative acks are
// recorded in acks (keyed by stream, so many frames of one stream
// collapse to one ack) and flushed by the caller at batch end — or
// earlier, before any blocking inbox insert.
func (n *TCPNode) handleFrame(h frameHeader, pl []byte, acks map[streamKey]uint64) {
	if h.kind == frameAck {
		n.dispatchAck(winKey{h.query, h.exchange, h.inst}, h.seq)
		return
	}
	in, sch, trk, scope, err := n.inbox(h.query, h.exchange, h.inst)
	if err != nil {
		return // stray frame for an unregistered exchange
	}
	if crc32.Checksum(pl, crcTable) != h.sum {
		// Corrupted in transit: drop without acking so the sender
		// retransmits. This is the recovery path injected Corrupt
		// faults exercise.
		if scope != nil {
			scope.Counter(telemetry.CtrNetCorruptDropped).Inc()
		}
		return
	}
	sk := streamKey{h.query, h.exchange, h.inst, h.src}
	verdict, ackSeq := n.applyOnce(sk, h.seq)
	rel := n.reliable()
	switch verdict {
	case applyIgnore:
		return
	case applyDup:
		// Duplicate: suppress, but re-acknowledge the watermark — the
		// original ack may have been lost to the sender's timeout.
		if scope != nil {
			scope.Counter(telemetry.CtrNetDupDropped).Inc()
			scope.Emit(telemetry.Recovery{Node: n.id, Action: "dup-drop"})
		}
		if rel {
			acks[sk] = ackSeq
		}
		return
	case applyGap:
		// A predecessor is missing: discard and re-ack what is applied,
		// so the sender retransmits from the gap.
		if scope != nil {
			scope.Counter(telemetry.CtrNetGapDropped).Inc()
		}
		if rel {
			acks[sk] = ackSeq
		}
		return
	}
	if rel {
		acks[sk] = ackSeq
	}
	switch h.kind {
	case frameEOF:
		in.producerDone()
	case frameData:
		b, err := block.Decode(sch, pl, trk)
		if err == nil {
			if !in.tryPut(b) {
				// The insert is about to block on a full inbox: flush
				// recorded acks first so reverse-direction senders keep
				// advancing (see the type comment).
				n.flushAcks(acks)
				in.put(b)
			}
		}
	}
}

// flushAcks sends every recorded cumulative ack and clears the map.
func (n *TCPNode) flushAcks(acks map[streamKey]uint64) {
	for sk, seq := range acks {
		n.sendAck(sk.src, sk.query, sk.exchange, sk.instance, seq)
	}
	clear(acks)
}

// sendAck acknowledges stream (query, exchange, inst) up to and
// including seq back to the source node, as a single-frame batch
// written directly (acks skip the stager: window advance is
// latency-critical). A failed write already dropped the dead
// connection, so one retry redials; an ack lost even then costs the
// sender a retransmit timeout and is counted.
func (n *TCPNode) sendAck(src, query, exchange, inst int, seq uint64) {
	if !n.reliable() {
		return
	}
	var buf [batchHdrLen + frameHdrLen]byte
	putBatchHeader(buf[:], frameHdrLen, 1)
	putFrameHeader(buf[batchHdrLen:], frameHeader{
		query: query, exchange: exchange, inst: inst,
		kind: frameAck, src: n.id, seq: seq,
	})
	p, err := n.pool(src)
	if err != nil {
		return // the sender will time out and retransmit
	}
	pc := p.slot(flowHash(query, exchange))
	if pc.write(p.addr, src, buf[:]) == nil {
		return
	}
	if pc.write(p.addr, src, buf[:]) == nil {
		return
	}
	n.statAckErrs.Add(1)
	n.mu.Lock()
	scope := n.scopes[exchangeKey{query, exchange}]
	n.mu.Unlock()
	if scope != nil {
		scope.Counter(telemetry.CtrNetAckSendErrors).Inc()
	}
}

// dispatchAck advances the send window a cumulative ack addresses;
// acks for already-drained windows find no entry and are ignored.
func (n *TCPNode) dispatchAck(k winKey, seq uint64) {
	n.winMu.Lock()
	w := n.wins[k]
	n.winMu.Unlock()
	if w != nil {
		w.advance(seq)
	}
}

func (n *TCPNode) registerWin(k winKey, w *sendWindow) {
	n.winMu.Lock()
	n.wins[k] = w
	n.winMu.Unlock()
}

func (n *TCPNode) unregisterWin(k winKey) {
	n.winMu.Lock()
	delete(n.wins, k)
	n.winMu.Unlock()
}

// pool returns (creating if necessary) the connection pool for a peer.
// SetPeer normally creates pools ahead of traffic; the lazy path covers
// peers installed by direct map assignment before the node saw them.
func (n *TCPNode) pool(peer int) (*connPool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.pools[peer]; ok {
		return p, nil
	}
	addr, known := n.peers[peer]
	if !known {
		return nil, fmt.Errorf("network: no address for node %d (dropped from the peer set?)", peer)
	}
	p := newConnPool(peer, addr, n.wireCfg().PoolSize)
	n.pools[peer] = p
	return p, nil
}

// writeBatch writes one finished batch on the peer's pooled connection
// selected by the flow hash — all traffic of one flow shares a slot, so
// per-stream frame order survives the multiplexing.
func (n *TCPNode) writeBatch(peer int, hash uint64, batch []byte) error {
	p, err := n.pool(peer)
	if err != nil {
		return err
	}
	return p.slot(hash).write(p.addr, peer, batch)
}

// TCPOutbox is the producer side of an exchange over TCP.
type TCPOutbox struct {
	node          *TCPNode
	query         int
	exchange      int
	consumerNodes []int // node id per destination instance
	buf           []byte
	seqs          []uint64      // next seq per destination
	wins          []*sendWindow // reliable path, lazily per destination
	scope         *telemetry.Scope
}

// NewOutbox creates an outbox sending from this node to the consumer
// instances of (query, exchange) located on the given nodes. Sequence
// numbers are based on a node-wide epoch shifted left 32 bits, so
// streams of consecutive queries reusing an exchange id never collide —
// and the receiver can tell a fresh stream's start (zero low bits) from
// a mid-stream gap.
func (n *TCPNode) NewOutbox(query, exchange int, consumerNodes []int) *TCPOutbox {
	base := uint64(n.epoch.Add(1)) << 32
	seqs := make([]uint64, len(consumerNodes))
	for i := range seqs {
		seqs[i] = base
	}
	return &TCPOutbox{node: n, query: query, exchange: exchange, consumerNodes: consumerNodes, seqs: seqs}
}

// SetScope attaches the telemetry scope sender-side events (injected
// faults, retries, transmit stalls) are recorded on.
func (o *TCPOutbox) SetScope(sc *telemetry.Scope) { o.scope = sc }

// Destinations implements iterator.Outbox.
func (o *TCPOutbox) Destinations() int { return len(o.consumerNodes) }

// Send implements iterator.Outbox. On the fast path the block is
// encoded once, directly into the staged wire batch; on the reliable
// path it is copied into a pooled window slot first so retransmissions
// outlive the caller's block.
func (o *TCPOutbox) Send(dest int, b *block.Block) error {
	n := o.node
	peer := o.consumerNodes[dest]
	seq := o.seqs[dest]
	o.seqs[dest]++
	if !n.reliable() {
		// Fire-and-forget fast path: the socket is trustworthy, pay no
		// round trip and no copy.
		h := frameHeader{
			query: o.query, exchange: o.exchange, inst: dest,
			kind: frameData, src: n.id, seq: seq,
		}
		return n.stager(peer, o.query, o.exchange, o.scope).appendBlock(h, b)
	}
	o.buf = b.Encode(o.buf)
	return o.sendReliable(dest, peer, seq, frameData, o.buf)
}

// CloseSend implements iterator.Outbox. End-of-stream markers ride the
// same path as data frames; on the reliable path CloseSend then drains
// every send window, so a stream failure (retransmission budget
// exhausted, exchange aborted) surfaces here at the latest.
func (o *TCPOutbox) CloseSend() error {
	n := o.node
	var firstErr error
	if !n.reliable() {
		for dest, peer := range o.consumerNodes {
			h := frameHeader{
				query: o.query, exchange: o.exchange, inst: dest,
				kind: frameEOF, src: n.id, seq: o.seqs[dest],
			}
			o.seqs[dest]++
			st := n.stager(peer, o.query, o.exchange, o.scope)
			err := st.appendRaw(h, nil)
			if err == nil {
				err = st.flush()
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	for dest, peer := range o.consumerNodes {
		seq := o.seqs[dest]
		o.seqs[dest]++
		if err := o.sendReliable(dest, peer, seq, frameEOF, nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, peer := range o.consumerNodes {
		_ = n.stager(peer, o.query, o.exchange, o.scope).flush()
	}
	for dest := range o.consumerNodes {
		if o.wins == nil || o.wins[dest] == nil {
			continue
		}
		if err := o.wins[dest].waitDrained(); err != nil && firstErr == nil {
			firstErr = err
		}
		n.unregisterWin(winKey{o.query, o.exchange, dest})
		o.wins[dest] = nil
	}
	return firstErr
}

// win returns (creating and registering on first use) the send window
// for one destination, and starts its retransmission pump.
func (o *TCPOutbox) win(dest int) (*sendWindow, error) {
	if o.wins == nil {
		o.wins = make([]*sendWindow, len(o.consumerNodes))
	}
	if w := o.wins[dest]; w != nil {
		return w, nil
	}
	n := o.node
	w := newSendWindow(o, dest, o.consumerNodes[dest])
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("network: node %d closed", n.id)
	}
	n.wg.Add(1)
	n.mu.Unlock()
	n.registerWin(winKey{o.query, o.exchange, dest}, w)
	o.wins[dest] = w
	go w.pump()
	return w, nil
}

// sendReliable ships one frame under the sliding window: reserve a
// window slot (blocking while the window is full), stage the initial
// transmission, and flush the stager if the window just filled — the
// stream is about to stall for acks, so waiting for more frames cannot
// help.
func (o *TCPOutbox) sendReliable(dest, peer int, seq uint64, kind byte, payload []byte) error {
	n := o.node
	select {
	case <-o.abortChan():
		return fmt.Errorf("network: exchange %d aborted", o.exchange)
	default:
	}
	if inj := n.faults(); inj.Severed(n.id, peer) {
		o.emitFault(telemetry.FaultInjected{
			Site: "link", Fault: "sever", From: n.id, To: peer,
			Exchange: o.exchange, Seq: seq,
		})
		return fmt.Errorf("network: link %d->%d severed", n.id, peer)
	}
	w, err := o.win(dest)
	if err != nil {
		return err
	}
	sum := crc32.Checksum(payload, crcTable)
	f, full, err := w.add(kind, seq, sum, payload, n.wireCfg().Window)
	if err != nil {
		return err
	}
	w.stageAttempt(f, 0)
	if full {
		_ = n.stager(peer, o.query, o.exchange, o.scope).flush()
	}
	return nil
}

// transmitFrame stages one transmission attempt of an in-flight frame,
// consulting the fault injector with the frame's coordinates — the same
// per-(seq, attempt) verdicts as v1's stop-and-wait loop, so recorded
// fault schedules keep their meaning. A Corrupt verdict poisons the
// frame checksum (the receiver's CRC check drops it either way); a Drop
// verdict keeps the frame off the wire and leaves recovery to the
// window pump.
func (o *TCPOutbox) transmitFrame(dest, peer int, f *wframe, attempt int) {
	n := o.node
	sum := f.sum
	var v faults.FrameVerdict
	if peer != n.id {
		v = n.faults().Frame(n.id, peer, o.exchange, f.seq, attempt)
	}
	if v.Delay > 0 {
		o.emitFault(telemetry.FaultInjected{
			Site: "link", Fault: "delay", From: n.id, To: peer,
			Exchange: o.exchange, Seq: f.seq, Delay: v.Delay,
		})
		time.Sleep(v.Delay)
	}
	if v.Drop {
		o.emitFault(telemetry.FaultInjected{
			Site: "link", Fault: "drop", From: n.id, To: peer,
			Exchange: o.exchange, Seq: f.seq,
		})
		return // never reaches the wire; the pump retransmits
	}
	if v.Corrupt {
		o.emitFault(telemetry.FaultInjected{
			Site: "link", Fault: "corrupt", From: n.id, To: peer,
			Exchange: o.exchange, Seq: f.seq,
		})
		sum ^= 0xDEAD
	}
	h := frameHeader{
		query: o.query, exchange: o.exchange, inst: dest,
		kind: f.kind, src: n.id, seq: f.seq, sum: sum,
	}
	st := n.stager(peer, o.query, o.exchange, o.scope)
	_ = st.appendRaw(h, f.payload)
	if v.Dup {
		o.emitFault(telemetry.FaultInjected{
			Site: "link", Fault: "dup", From: n.id, To: peer,
			Exchange: o.exchange, Seq: f.seq,
		})
		_ = st.appendRaw(h, f.payload)
	}
}

func (o *TCPOutbox) abortChan() chan struct{} {
	return o.node.abortCh(o.query, o.exchange)
}

func (o *TCPOutbox) emitFault(rec telemetry.FaultInjected) {
	if o.scope == nil {
		return
	}
	o.scope.Counter(telemetry.CtrFaultsInjected).Inc()
	o.scope.Emit(rec)
}

// Close shuts the node down: fail every send window (their pumps exit),
// discard staged batches, close the listener and all pooled and
// accepted connections, then join every goroutine.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	pools := n.pools
	accepted := n.accepted
	n.pools = make(map[int]*connPool)
	n.accepted = nil
	aborts := n.aborts
	n.aborts = make(map[exchangeKey]chan struct{})
	stagers := n.stagers
	n.stagers = make(map[stageKey]*stager)
	n.mu.Unlock()
	// Fail pending reliable sends so no Send outlives the node.
	for _, ch := range aborts {
		select {
		case <-ch:
		default:
			close(ch)
		}
	}
	n.winMu.Lock()
	wins := n.wins
	n.wins = make(map[winKey]*sendWindow)
	n.winMu.Unlock()
	for _, w := range wins {
		w.fail(fmt.Errorf("network: node %d closed", n.id))
	}
	for _, s := range stagers {
		s.discard()
	}
	n.ln.Close()
	for _, p := range pools {
		p.closeAll()
	}
	for _, c := range accepted {
		c.Close()
	}
	n.wg.Wait()
}

var _ iterator.Outbox = (*TCPOutbox)(nil)
