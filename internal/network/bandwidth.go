package network

import (
	"sync"
	"time"
)

// Limiter is a token-bucket bandwidth limiter emulating a NIC: Take
// blocks the caller until the requested bytes fit the configured rate.
// A zero rate means unlimited. The paper's testbed interconnect is
// Gigabit Ethernet (Section 5.1); the in-process transport uses one
// limiter per node NIC so that network-bound pipelines exhibit the
// saturation behavior of Figures 10-12.
type Limiter struct {
	mu       sync.Mutex
	rate     float64 // bytes per second; 0 = unlimited
	capacity float64 // burst size in bytes
	tokens   float64
	last     time.Time
	taken    int64
}

// NewLimiter creates a limiter at the given rate in bytes/second with a
// burst capacity of 1/16 second of traffic.
func NewLimiter(bytesPerSec float64) *Limiter {
	return &Limiter{
		rate:     bytesPerSec,
		capacity: bytesPerSec / 16,
		tokens:   bytesPerSec / 16,
		last:     time.Now(),
	}
}

// Take consumes n bytes of budget, sleeping as needed. Bytes are
// accounted even when the limiter is unlimited.
func (l *Limiter) Take(n int) {
	if l == nil {
		return
	}
	if l.rate <= 0 {
		l.mu.Lock()
		l.taken += int64(n)
		l.mu.Unlock()
		return
	}
	for {
		l.mu.Lock()
		now := time.Now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.capacity {
			l.tokens = l.capacity
		}
		l.last = now
		if l.tokens >= float64(n) {
			l.tokens -= float64(n)
			l.taken += int64(n)
			l.mu.Unlock()
			return
		}
		deficit := float64(n) - l.tokens
		wait := time.Duration(deficit / l.rate * float64(time.Second))
		l.mu.Unlock()
		if wait < 50*time.Microsecond {
			wait = 50 * time.Microsecond
		}
		time.Sleep(wait)
	}
}

// Taken returns the cumulative bytes that passed the limiter.
func (l *Limiter) Taken() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.taken
}
