package network

import (
	"fmt"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/iterator"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// Fabric abstracts the exchange substrate the engine wires segments
// over, so the same execution code runs on the in-process transport
// (tests, examples, simulated bandwidth) or across real TCP sockets.
type Fabric interface {
	// NewExchange declares an exchange: producers instances ship
	// sch-typed blocks to one consumer instance per entry of
	// consumerNodes. bufBlocks bounds each inbox (<=0 unbounded);
	// tracker accounts staged bytes. Cross-node traffic is counted on
	// scope's shared telemetry counters (net.bytes / net.blocks) and
	// emitted as BlockSent events — identically on every transport.
	NewExchange(id, producers int, consumerNodes []int, sch *types.Schema,
		bufBlocks int, tracker *block.Tracker, scope *telemetry.Scope) FabricExchange
	// NodeEgressBytes reports bytes a node pushed into the fabric.
	NodeEgressBytes(node int) int64
}

// FabricExchange is one wired exchange.
type FabricExchange interface {
	Inbox(i int) *Inbox
	Outbox(producerNode int) iterator.Outbox
}

// scopedOutbox is the shared telemetry shim both transports wrap their
// outboxes in: it counts bytes and blocks that cross a node boundary
// into the scope's counters and emits one BlockSent event per crossing.
// Same-node traffic is not counted, on either transport — this is what
// makes the real-TCP and in-process paths report identical network
// statistics.
type scopedOutbox struct {
	inner         iterator.Outbox
	scope         *telemetry.Scope
	exchange      int
	node          int
	consumerNodes []int
	bytes         *telemetry.Counter
	blocks        *telemetry.Counter
}

// wrapOutbox attaches telemetry counting to an outbox; with a nil scope
// the outbox passes through unwrapped.
func wrapOutbox(inner iterator.Outbox, scope *telemetry.Scope,
	exchange, node int, consumerNodes []int) iterator.Outbox {
	if scope == nil {
		return inner
	}
	return &scopedOutbox{
		inner:         inner,
		scope:         scope,
		exchange:      exchange,
		node:          node,
		consumerNodes: consumerNodes,
		bytes:         scope.Counter(telemetry.CtrNetBytes),
		blocks:        scope.Counter(telemetry.CtrNetBlocks),
	}
}

// Destinations implements iterator.Outbox.
func (o *scopedOutbox) Destinations() int { return o.inner.Destinations() }

// Send implements iterator.Outbox.
func (o *scopedOutbox) Send(dest int, b *block.Block) error {
	if dest >= 0 && dest < len(o.consumerNodes) && o.consumerNodes[dest] != o.node {
		wire := b.WireSize()
		o.bytes.Add(int64(wire))
		o.blocks.Inc()
		o.scope.Emit(telemetry.BlockSent{
			Exchange: o.exchange,
			From:     o.node,
			To:       o.consumerNodes[dest],
			Tuples:   b.NumTuples(),
			Bytes:    wire,
		})
	}
	return o.inner.Send(dest, b)
}

// CloseSend implements iterator.Outbox.
func (o *scopedOutbox) CloseSend() error { return o.inner.CloseSend() }

// --- in-process fabric -------------------------------------------------------

// InProcFabric adapts InProc to the Fabric interface.
type InProcFabric struct{ T *InProc }

// NewExchange implements Fabric. The in-process transport moves blocks
// by pointer, so the schema is not needed for decoding.
func (f InProcFabric) NewExchange(id, producers int, consumerNodes []int,
	_ *types.Schema, bufBlocks int, tracker *block.Tracker,
	scope *telemetry.Scope) FabricExchange {
	return inprocExchange{
		ex:            f.T.NewExchange(id, producers, consumerNodes, bufBlocks, tracker),
		scope:         scope,
		id:            id,
		consumerNodes: consumerNodes,
	}
}

// NodeEgressBytes implements Fabric.
func (f InProcFabric) NodeEgressBytes(node int) int64 {
	return f.T.NodeEgressBytes(node)
}

type inprocExchange struct {
	ex            *Exchange
	scope         *telemetry.Scope
	id            int
	consumerNodes []int
}

func (e inprocExchange) Inbox(i int) *Inbox { return e.ex.Inbox(i) }

func (e inprocExchange) Outbox(node int) iterator.Outbox {
	return wrapOutbox(e.ex.Outbox(node), e.scope, e.id, node, e.consumerNodes)
}

// --- TCP fabric ---------------------------------------------------------------

// TCPFabric runs every exchange over real sockets: one TCPNode per
// cluster node (including the master), typically on loopback within one
// process, or across machines when the peer map says so. Blocks pass
// through the block wire codec on every hop.
type TCPFabric struct {
	nodes  map[int]*TCPNode
	egress map[int]*atomic.Int64
}

// NewTCPFabric builds a fabric over the given nodes (node id → TCPNode).
func NewTCPFabric(nodes map[int]*TCPNode) *TCPFabric {
	f := &TCPFabric{nodes: nodes, egress: make(map[int]*atomic.Int64)}
	for id := range nodes {
		f.egress[id] = &atomic.Int64{}
	}
	return f
}

// NewExchange implements Fabric.
func (f *TCPFabric) NewExchange(id, producers int, consumerNodes []int,
	sch *types.Schema, bufBlocks int, tracker *block.Tracker,
	scope *telemetry.Scope) FabricExchange {
	ex := &tcpExchange{fabric: f, id: id, consumerNodes: consumerNodes, scope: scope}
	for i, cn := range consumerNodes {
		node, ok := f.nodes[cn]
		if !ok {
			panic(fmt.Sprintf("network: TCP fabric has no node %d", cn))
		}
		ex.inboxes = append(ex.inboxes,
			node.RegisterInbox(id, i, producers, sch, bufBlocks, tracker))
	}
	return ex
}

// NodeEgressBytes implements Fabric.
func (f *TCPFabric) NodeEgressBytes(node int) int64 {
	if c, ok := f.egress[node]; ok {
		return c.Load()
	}
	return 0
}

type tcpExchange struct {
	fabric        *TCPFabric
	id            int
	consumerNodes []int
	scope         *telemetry.Scope
	inboxes       []*Inbox
}

// Inbox implements FabricExchange.
func (e *tcpExchange) Inbox(i int) *Inbox { return e.inboxes[i] }

// Outbox implements FabricExchange.
func (e *tcpExchange) Outbox(producerNode int) iterator.Outbox {
	node, ok := e.fabric.nodes[producerNode]
	if !ok {
		panic(fmt.Sprintf("network: TCP fabric has no node %d", producerNode))
	}
	inner := &countingOutbox{
		inner:   node.NewOutbox(e.id, e.consumerNodes),
		counter: e.fabric.egress[producerNode],
	}
	return wrapOutbox(inner, e.scope, e.id, producerNode, e.consumerNodes)
}

// countingOutbox tracks raw socket egress bytes around a TCPOutbox (the
// per-fabric NodeEgressBytes view; telemetry counting is layered on top
// by the shared scopedOutbox).
type countingOutbox struct {
	inner   *TCPOutbox
	counter *atomic.Int64
}

// Destinations implements iterator.Outbox.
func (o *countingOutbox) Destinations() int { return o.inner.Destinations() }

// Send implements iterator.Outbox.
func (o *countingOutbox) Send(dest int, b *block.Block) error {
	o.counter.Add(int64(b.WireSize()))
	return o.inner.Send(dest, b)
}

// CloseSend implements iterator.Outbox.
func (o *countingOutbox) CloseSend() error { return o.inner.CloseSend() }
