package network

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/faults"
	"repro/internal/iterator"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// Fabric abstracts the exchange substrate the engine wires segments
// over, so the same execution code runs on the in-process transport
// (tests, examples, simulated bandwidth) or across real TCP sockets.
type Fabric interface {
	// NewExchange declares an exchange: producers instances ship
	// sch-typed blocks to one consumer instance per entry of
	// consumerNodes. Exchanges are keyed by (query, id): plan exchange
	// ids repeat across queries, so the process-unique query id
	// namespaces every dataflow and concurrent queries never cross.
	// bufBlocks bounds each inbox (<=0 unbounded); tracker accounts
	// staged bytes. Cross-node traffic is counted on scope's shared
	// telemetry counters (net.bytes / net.blocks) and emitted as
	// BlockSent events — identically on every transport.
	NewExchange(query, id, producers int, consumerNodes []int, sch *types.Schema,
		bufBlocks int, tracker *block.Tracker, scope *telemetry.Scope) FabricExchange
	// NodeEgressBytes reports bytes a node pushed into the fabric.
	NodeEgressBytes(node int) int64
}

// FabricExchange is one wired exchange.
type FabricExchange interface {
	Inbox(i int) *Inbox
	Outbox(producerNode int) iterator.Outbox
	// Abort abandons the exchange after a query failure: inboxes
	// unblock and discard, pending reliable sends fail fast. Idempotent;
	// safe to call concurrently with senders and receivers.
	Abort()
	// Release drops the exchange's per-query state from the transport
	// once the query completed. A long-lived serving node would
	// otherwise accrete per-query registrations forever. Call after all
	// senders and receivers finished; idempotent.
	Release()
}

// scopedOutbox is the shared telemetry shim both transports wrap their
// outboxes in: it counts bytes and blocks that cross a node boundary
// into the scope's counters and emits one BlockSent event per crossing.
// Same-node traffic is not counted, on either transport — this is what
// makes the real-TCP and in-process paths report identical network
// statistics.
type scopedOutbox struct {
	inner         iterator.Outbox
	scope         *telemetry.Scope
	exchange      int
	node          int
	consumerNodes []int
	bytes         *telemetry.Counter
	blocks        *telemetry.Counter
}

// wrapOutbox attaches telemetry counting to an outbox; with a nil scope
// the outbox passes through unwrapped.
func wrapOutbox(inner iterator.Outbox, scope *telemetry.Scope,
	exchange, node int, consumerNodes []int) iterator.Outbox {
	if scope == nil {
		return inner
	}
	return &scopedOutbox{
		inner:         inner,
		scope:         scope,
		exchange:      exchange,
		node:          node,
		consumerNodes: consumerNodes,
		bytes:         scope.Counter(telemetry.CtrNetBytes),
		blocks:        scope.Counter(telemetry.CtrNetBlocks),
	}
}

// Destinations implements iterator.Outbox.
func (o *scopedOutbox) Destinations() int { return o.inner.Destinations() }

// Send implements iterator.Outbox.
func (o *scopedOutbox) Send(dest int, b *block.Block) error {
	if dest >= 0 && dest < len(o.consumerNodes) && o.consumerNodes[dest] != o.node {
		wire := b.WireSize()
		o.bytes.Add(int64(wire))
		o.blocks.Inc()
		o.scope.Emit(telemetry.BlockSent{
			Exchange: o.exchange,
			From:     o.node,
			To:       o.consumerNodes[dest],
			Tuples:   b.NumTuples(),
			Bytes:    wire,
		})
		// The send span covers the cross-node handoff incl. backpressure
		// and bandwidth waits; recv-side time shows as the consuming
		// merger operator's busy time.
		sp := o.scope.StartSpan("send ex"+strconv.Itoa(o.exchange), "net").
			WithNode(o.node).WithRows(int64(b.NumTuples())).
			WithBlocks(1).WithBytes(int64(wire))
		err := o.inner.Send(dest, b)
		sp.End()
		return err
	}
	return o.inner.Send(dest, b)
}

// CloseSend implements iterator.Outbox.
func (o *scopedOutbox) CloseSend() error { return o.inner.CloseSend() }

// --- in-process fabric -------------------------------------------------------

// InProcFabric adapts InProc to the Fabric interface. Faults optionally
// attaches a fault injector: in-process "frames" (block handoffs) then
// pass through the same drop/delay/duplicate/corrupt verdicts as TCP
// frames, with loss surfacing as a backoff-and-retransmit delay and
// duplicates suppressed by the receiver model — so fault schedules run
// identically against both fabrics. Retry overrides the backoff policy.
type InProcFabric struct {
	T      *InProc
	Faults *faults.Injector
	Retry  *RetryPolicy
}

// NewExchange implements Fabric. The in-process transport moves blocks
// by pointer, so the schema is not needed for decoding. Each call
// creates a private exchange object, so the (query, id) key only
// matters for labels: in-process dataflows are disjoint by
// construction.
func (f InProcFabric) NewExchange(query, id, producers int, consumerNodes []int,
	_ *types.Schema, bufBlocks int, tracker *block.Tracker,
	scope *telemetry.Scope) FabricExchange {
	pol := DefaultRetryPolicy
	if f.Retry != nil {
		pol = f.Retry.withDefaults()
	}
	return inprocExchange{
		ex:            f.T.NewExchange(id, producers, consumerNodes, bufBlocks, tracker),
		scope:         scope,
		id:            id,
		consumerNodes: consumerNodes,
		inj:           f.Faults,
		pol:           pol,
	}
}

// NodeEgressBytes implements Fabric.
func (f InProcFabric) NodeEgressBytes(node int) int64 {
	return f.T.NodeEgressBytes(node)
}

type inprocExchange struct {
	ex            *Exchange
	scope         *telemetry.Scope
	id            int
	consumerNodes []int
	inj           *faults.Injector
	pol           RetryPolicy
}

func (e inprocExchange) Inbox(i int) *Inbox { return e.ex.Inbox(i) }

func (e inprocExchange) Abort() { e.ex.Abort() }

// Release implements FabricExchange. The in-process transport holds no
// per-query registry — the exchange object itself is the only state,
// and it is garbage once the query drops it.
func (e inprocExchange) Release() {}

func (e inprocExchange) Outbox(node int) iterator.Outbox {
	var inner iterator.Outbox = e.ex.Outbox(node)
	if e.inj.Enabled() {
		inner = &faultyOutbox{
			inner:         inner,
			inj:           e.inj,
			pol:           e.pol,
			scope:         e.scope,
			exchange:      e.id,
			node:          node,
			consumerNodes: e.consumerNodes,
			seqs:          make([]uint64, len(e.consumerNodes)),
			abort:         e.ex.abortCh,
		}
	}
	return wrapOutbox(inner, e.scope, e.id, node, e.consumerNodes)
}

// faultyOutbox subjects in-process block handoffs to the fault
// injector, mirroring the TCP reliable path's observable behavior:
// dropped or corrupted frames cost an ack-timeout backoff and a
// retransmission, delays sleep, duplicates are suppressed at the
// receiver (the transport moves pointers, so applying one would corrupt
// shared state — suppression is mandatory, and counted like TCP's
// dedupe), and a severed link fails the send.
type faultyOutbox struct {
	inner         iterator.Outbox
	inj           *faults.Injector
	pol           RetryPolicy
	scope         *telemetry.Scope
	exchange      int
	node          int
	consumerNodes []int
	seqs          []uint64
	abort         <-chan struct{}
}

// Destinations implements iterator.Outbox.
func (o *faultyOutbox) Destinations() int { return o.inner.Destinations() }

// Send implements iterator.Outbox.
func (o *faultyOutbox) Send(dest int, b *block.Block) error {
	return o.ship(dest, func() error { return o.inner.Send(dest, b) })
}

// CloseSend implements iterator.Outbox. End-of-stream markers pay the
// same fault schedule per destination, then close the inner streams.
func (o *faultyOutbox) CloseSend() error {
	for dest := range o.consumerNodes {
		if err := o.ship(dest, func() error { return nil }); err != nil {
			return err
		}
	}
	return o.inner.CloseSend()
}

// ship runs one logical frame through the fault/retry loop and calls
// deliver on success.
func (o *faultyOutbox) ship(dest int, deliver func() error) error {
	to := o.consumerNodes[dest]
	seq := o.seqs[dest]
	o.seqs[dest]++
	if to == o.node {
		// Same-node traffic bypasses the emulated wire, faults included.
		return deliver()
	}
	deadline := time.Now().Add(o.pol.Deadline)
	for attempt := 0; ; attempt++ {
		select {
		case <-o.abort:
			return fmt.Errorf("network: exchange %d aborted", o.exchange)
		default:
		}
		if o.inj.Severed(o.node, to) {
			o.emitFault("sever", to, seq, 0)
			return fmt.Errorf("network: link %d->%d severed", o.node, to)
		}
		v := o.inj.Frame(o.node, to, o.exchange, seq, attempt)
		if v.Delay > 0 {
			o.emitFault("delay", to, seq, v.Delay)
			time.Sleep(v.Delay)
		}
		if !v.Drop && !v.Corrupt {
			if v.Dup {
				// The duplicate "arrives" and is suppressed by sequence
				// number, exactly like the TCP receiver's dedupe.
				o.emitFault("dup", to, seq, 0)
				if o.scope != nil {
					o.scope.Counter(telemetry.CtrNetDupDropped).Inc()
					o.scope.Emit(telemetry.Recovery{Node: to, Action: "dup-drop"})
				}
			}
			return deliver()
		}
		// Lost (or checksum-failed) frame: the sender waits out the ack
		// timeout, then retransmits.
		kind := "drop"
		if v.Corrupt {
			kind = "corrupt"
			if o.scope != nil {
				o.scope.Counter(telemetry.CtrNetCorruptDropped).Inc()
			}
		}
		o.emitFault(kind, to, seq, 0)
		wait := o.pol.Timeout(attempt, seq*0x9e3779b97f4a7c15+uint64(attempt))
		timer := time.NewTimer(wait)
		select {
		case <-o.abort:
			timer.Stop()
			return fmt.Errorf("network: exchange %d aborted", o.exchange)
		case <-timer.C:
		}
		if (o.pol.MaxAttempts > 0 && attempt+1 >= o.pol.MaxAttempts) || time.Now().After(deadline) {
			return fmt.Errorf("network: send to node %d (exchange %d, seq %d) undeliverable after %d attempts",
				to, o.exchange, seq, attempt+1)
		}
		if o.scope != nil {
			o.scope.Counter(telemetry.CtrNetRetries).Inc()
			o.scope.Emit(telemetry.NetRetry{
				Exchange: o.exchange, From: o.node, To: to, Seq: seq,
				Attempt: attempt + 1, Backoff: wait, Cause: "timeout",
			})
		}
	}
}

func (o *faultyOutbox) emitFault(kind string, to int, seq uint64, d time.Duration) {
	if o.scope == nil {
		return
	}
	o.scope.Counter(telemetry.CtrFaultsInjected).Inc()
	o.scope.Emit(telemetry.FaultInjected{
		Site: "link", Fault: kind, From: o.node, To: to,
		Exchange: o.exchange, Seq: seq, Delay: d,
	})
}

// --- TCP fabric ---------------------------------------------------------------

// TCPFabric runs every exchange over real sockets: one TCPNode per
// cluster node (including the master), typically on loopback within one
// process, or across machines when the peer map says so. Blocks pass
// through the block wire codec on every hop.
type TCPFabric struct {
	nodes  map[int]*TCPNode
	egress map[int]*atomic.Int64
}

// NewTCPFabric builds a fabric over the given nodes (node id → TCPNode).
func NewTCPFabric(nodes map[int]*TCPNode) *TCPFabric {
	f := &TCPFabric{nodes: nodes, egress: make(map[int]*atomic.Int64)}
	for id := range nodes {
		f.egress[id] = &atomic.Int64{}
	}
	return f
}

// NewExchange implements Fabric.
func (f *TCPFabric) NewExchange(query, id, producers int, consumerNodes []int,
	sch *types.Schema, bufBlocks int, tracker *block.Tracker,
	scope *telemetry.Scope) FabricExchange {
	ex := &tcpExchange{fabric: f, query: query, id: id, consumerNodes: consumerNodes, scope: scope}
	for i, cn := range consumerNodes {
		node, ok := f.nodes[cn]
		if !ok {
			panic(fmt.Sprintf("network: TCP fabric has no node %d", cn))
		}
		node.SetExchangeScope(query, id, scope)
		ex.inboxes = append(ex.inboxes,
			node.RegisterInbox(query, id, i, producers, sch, bufBlocks, tracker))
	}
	return ex
}

// SetFaults attaches one injector to every node of the fabric.
func (f *TCPFabric) SetFaults(j *faults.Injector) {
	for _, n := range f.nodes {
		n.SetFaults(j)
	}
}

// NodeEgressBytes implements Fabric.
func (f *TCPFabric) NodeEgressBytes(node int) int64 {
	if c, ok := f.egress[node]; ok {
		return c.Load()
	}
	return 0
}

type tcpExchange struct {
	fabric        *TCPFabric
	query         int
	id            int
	consumerNodes []int
	scope         *telemetry.Scope
	inboxes       []*Inbox
}

// Inbox implements FabricExchange.
func (e *tcpExchange) Inbox(i int) *Inbox { return e.inboxes[i] }

// Abort implements FabricExchange: every node of the fabric abandons
// the exchange, so senders, read loops and consumers all unwedge.
func (e *tcpExchange) Abort() {
	for _, n := range e.fabric.nodes {
		n.AbortExchange(e.query, e.id)
	}
}

// Release implements FabricExchange: every node drops the exchange's
// per-query registrations.
func (e *tcpExchange) Release() {
	for _, n := range e.fabric.nodes {
		n.ReleaseExchange(e.query, e.id)
	}
}

// Outbox implements FabricExchange.
func (e *tcpExchange) Outbox(producerNode int) iterator.Outbox {
	node, ok := e.fabric.nodes[producerNode]
	if !ok {
		panic(fmt.Sprintf("network: TCP fabric has no node %d", producerNode))
	}
	ob := node.NewOutbox(e.query, e.id, e.consumerNodes)
	ob.SetScope(e.scope)
	inner := &countingOutbox{
		inner:   ob,
		counter: e.fabric.egress[producerNode],
	}
	return wrapOutbox(inner, e.scope, e.id, producerNode, e.consumerNodes)
}

// countingOutbox tracks raw socket egress bytes around a TCPOutbox (the
// per-fabric NodeEgressBytes view; telemetry counting is layered on top
// by the shared scopedOutbox).
type countingOutbox struct {
	inner   *TCPOutbox
	counter *atomic.Int64
}

// Destinations implements iterator.Outbox.
func (o *countingOutbox) Destinations() int { return o.inner.Destinations() }

// Send implements iterator.Outbox.
func (o *countingOutbox) Send(dest int, b *block.Block) error {
	o.counter.Add(int64(b.WireSize()))
	return o.inner.Send(dest, b)
}

// CloseSend implements iterator.Outbox.
func (o *countingOutbox) CloseSend() error { return o.inner.CloseSend() }
