package network

import (
	"fmt"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/iterator"
	"repro/internal/types"
)

// Fabric abstracts the exchange substrate the engine wires segments
// over, so the same execution code runs on the in-process transport
// (tests, examples, simulated bandwidth) or across real TCP sockets.
type Fabric interface {
	// NewExchange declares an exchange: producers instances ship
	// sch-typed blocks to one consumer instance per entry of
	// consumerNodes. bufBlocks bounds each inbox (<=0 unbounded);
	// tracker accounts staged bytes.
	NewExchange(id, producers int, consumerNodes []int, sch *types.Schema,
		bufBlocks int, tracker *block.Tracker) FabricExchange
	// NodeEgressBytes reports bytes a node pushed into the fabric.
	NodeEgressBytes(node int) int64
}

// FabricExchange is one wired exchange.
type FabricExchange interface {
	Inbox(i int) *Inbox
	Outbox(producerNode int) iterator.Outbox
}

// --- in-process fabric -------------------------------------------------------

// InProcFabric adapts InProc to the Fabric interface.
type InProcFabric struct{ T *InProc }

// NewExchange implements Fabric. The in-process transport moves blocks
// by pointer, so the schema is not needed for decoding.
func (f InProcFabric) NewExchange(id, producers int, consumerNodes []int,
	_ *types.Schema, bufBlocks int, tracker *block.Tracker) FabricExchange {
	return inprocExchange{f.T.NewExchange(id, producers, consumerNodes, bufBlocks, tracker)}
}

// NodeEgressBytes implements Fabric.
func (f InProcFabric) NodeEgressBytes(node int) int64 {
	return f.T.NodeEgressBytes(node)
}

type inprocExchange struct{ ex *Exchange }

func (e inprocExchange) Inbox(i int) *Inbox              { return e.ex.Inbox(i) }
func (e inprocExchange) Outbox(node int) iterator.Outbox { return e.ex.Outbox(node) }

// --- TCP fabric ---------------------------------------------------------------

// TCPFabric runs every exchange over real sockets: one TCPNode per
// cluster node (including the master), typically on loopback within one
// process, or across machines when the peer map says so. Blocks pass
// through the block wire codec on every hop.
type TCPFabric struct {
	nodes  map[int]*TCPNode
	egress map[int]*atomic.Int64
}

// NewTCPFabric builds a fabric over the given nodes (node id → TCPNode).
func NewTCPFabric(nodes map[int]*TCPNode) *TCPFabric {
	f := &TCPFabric{nodes: nodes, egress: make(map[int]*atomic.Int64)}
	for id := range nodes {
		f.egress[id] = &atomic.Int64{}
	}
	return f
}

// NewExchange implements Fabric.
func (f *TCPFabric) NewExchange(id, producers int, consumerNodes []int,
	sch *types.Schema, bufBlocks int, tracker *block.Tracker) FabricExchange {
	ex := &tcpExchange{fabric: f, id: id, consumerNodes: consumerNodes}
	for i, cn := range consumerNodes {
		node, ok := f.nodes[cn]
		if !ok {
			panic(fmt.Sprintf("network: TCP fabric has no node %d", cn))
		}
		ex.inboxes = append(ex.inboxes,
			node.RegisterInbox(id, i, producers, sch, bufBlocks, tracker))
	}
	return ex
}

// NodeEgressBytes implements Fabric.
func (f *TCPFabric) NodeEgressBytes(node int) int64 {
	if c, ok := f.egress[node]; ok {
		return c.Load()
	}
	return 0
}

type tcpExchange struct {
	fabric        *TCPFabric
	id            int
	consumerNodes []int
	inboxes       []*Inbox
}

// Inbox implements FabricExchange.
func (e *tcpExchange) Inbox(i int) *Inbox { return e.inboxes[i] }

// Outbox implements FabricExchange.
func (e *tcpExchange) Outbox(producerNode int) iterator.Outbox {
	node, ok := e.fabric.nodes[producerNode]
	if !ok {
		panic(fmt.Sprintf("network: TCP fabric has no node %d", producerNode))
	}
	return &countingOutbox{
		inner:   node.NewOutbox(e.id, e.consumerNodes),
		counter: e.fabric.egress[producerNode],
	}
}

// countingOutbox tracks egress bytes around a TCPOutbox.
type countingOutbox struct {
	inner   *TCPOutbox
	counter *atomic.Int64
}

// Destinations implements iterator.Outbox.
func (o *countingOutbox) Destinations() int { return o.inner.Destinations() }

// Send implements iterator.Outbox.
func (o *countingOutbox) Send(dest int, b *block.Block) error {
	o.counter.Add(int64(b.WireSize()))
	return o.inner.Send(dest, b)
}

// CloseSend implements iterator.Outbox.
func (o *countingOutbox) CloseSend() error { return o.inner.CloseSend() }
