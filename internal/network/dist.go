package network

import (
	"fmt"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/iterator"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// Query-id namespace partitioning. Every exchange in both fabrics is
// keyed by (queryID, exchangeID); served queries draw their ids from
// the engine (always below ReservedQueryIDBase), while out-of-band
// tools that ship blocks outside any query — the claims-node -drive
// mesh exerciser — use ids in the reserved range. Before this split
// the mesh tool squatted on query id 0, which collided with a served
// query whose dataflow reused the same (0, exchange) key.
const (
	// ReservedQueryIDBase is the first reserved query id: the engine
	// never assigns ids at or above it.
	ReservedQueryIDBase = 1 << 30
	// MeshQueryID is the query id of the claims-node mesh throughput
	// tool's dataflow.
	MeshQueryID = ReservedQueryIDBase
	// MeshExchangeID is the exchange id of the mesh tool's dataflow.
	MeshExchangeID = 1
)

// DistFabric is the Fabric of ONE process of a multi-process cluster:
// it wraps the process's single TCPNode. Where TCPFabric (all nodes in
// one process) registers inboxes on every consumer node, DistFabric
// registers only the consumer instances living on the local node —
// each peer process runs the same wiring code against its own
// DistFabric, and the union across processes reproduces the full
// exchange. Outboxes are only available for the local node, and Abort/
// Release act on the local node only: every process tears down its own
// side of a dataflow (the coordinator broadcasts the abort over the
// control plane).
//
// Peer addressing is dynamic: the membership plane pushes view updates
// into TCPNode.SetPeer/DropPeer, so a node that rejoined on a fresh
// ephemeral port is redialed at its new address.
type DistFabric struct {
	node   *TCPNode
	egress atomic.Int64
}

// NewDistFabric builds the fabric over the process's node.
func NewDistFabric(n *TCPNode) *DistFabric { return &DistFabric{node: n} }

// Node returns the underlying transport node.
func (f *DistFabric) Node() *TCPNode { return f.node }

// NewExchange implements Fabric. Only consumer instances placed on the
// local node get an inbox; Inbox(i) for a remote instance returns nil
// (the engine never asks — it only reads inboxes of segments it
// instantiated locally).
func (f *DistFabric) NewExchange(query, id, producers int, consumerNodes []int,
	sch *types.Schema, bufBlocks int, tracker *block.Tracker,
	scope *telemetry.Scope) FabricExchange {
	ex := &distExchange{
		fabric:        f,
		query:         query,
		id:            id,
		consumerNodes: consumerNodes,
		scope:         scope,
		inboxes:       make([]*Inbox, len(consumerNodes)),
	}
	for i, cn := range consumerNodes {
		if cn != f.node.id {
			continue
		}
		f.node.SetExchangeScope(query, id, scope)
		ex.inboxes[i] = f.node.RegisterInbox(query, id, i, producers, sch, bufBlocks, tracker)
	}
	return ex
}

// NodeEgressBytes implements Fabric: only the local node's egress is
// observable from this process.
func (f *DistFabric) NodeEgressBytes(node int) int64 {
	if node == f.node.id {
		return f.egress.Load()
	}
	return 0
}

type distExchange struct {
	fabric        *DistFabric
	query         int
	id            int
	consumerNodes []int
	scope         *telemetry.Scope
	inboxes       []*Inbox
}

// Inbox implements FabricExchange; nil for instances on remote nodes.
func (e *distExchange) Inbox(i int) *Inbox { return e.inboxes[i] }

// Abort implements FabricExchange for the local side of the dataflow.
func (e *distExchange) Abort() {
	e.fabric.node.AbortExchange(e.query, e.id)
}

// Release implements FabricExchange for the local side.
func (e *distExchange) Release() {
	e.fabric.node.ReleaseExchange(e.query, e.id)
}

// Outbox implements FabricExchange. Producers only ever run where they
// were instantiated, so asking for a remote node's outbox is a wiring
// bug, not a runtime condition.
func (e *distExchange) Outbox(producerNode int) iterator.Outbox {
	if producerNode != e.fabric.node.id {
		panic(fmt.Sprintf("network: DistFabric on node %d asked for node %d's outbox",
			e.fabric.node.id, producerNode))
	}
	ob := e.fabric.node.NewOutbox(e.query, e.id, e.consumerNodes)
	ob.SetScope(e.scope)
	inner := &countingOutbox{inner: ob, counter: &e.fabric.egress}
	return wrapOutbox(inner, e.scope, e.id, producerNode, e.consumerNodes)
}

var _ Fabric = (*DistFabric)(nil)
