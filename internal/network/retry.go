package network

import "time"

// RetryPolicy governs the reliable send path of the transports: how
// long to wait for a frame acknowledgement before retransmitting, and
// when to give up. Backoff is exponential from Base to Max with
// deterministic jitter, so a retry storm from many senders decorrelates
// without losing reproducibility.
type RetryPolicy struct {
	// MaxAttempts bounds transmissions per frame (0 = bounded only by
	// Deadline).
	MaxAttempts int
	// Base is the first ack-wait timeout.
	Base time.Duration
	// Max caps the exponential backoff.
	Max time.Duration
	// Deadline is the total per-send budget; a send that cannot be
	// acknowledged within it fails.
	Deadline time.Duration
	// Jitter is the fraction of the backoff randomized (±Jitter/2),
	// drawn deterministically from the frame coordinates.
	Jitter float64
}

// DefaultRetryPolicy is the transports' default reliable-send policy.
// The generous deadline keeps backpressure stalls (a full inbox delays
// the ack of the next frame) from masquerading as loss.
var DefaultRetryPolicy = RetryPolicy{
	Base:     25 * time.Millisecond,
	Max:      2 * time.Second,
	Deadline: 30 * time.Second,
	Jitter:   0.2,
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = DefaultRetryPolicy.Base
	}
	if p.Max <= 0 {
		p.Max = DefaultRetryPolicy.Max
	}
	if p.Deadline <= 0 {
		p.Deadline = DefaultRetryPolicy.Deadline
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Timeout returns the ack-wait timeout for the given attempt (0-based):
// Base·2^attempt capped at Max, jittered by ±Jitter/2 using the hash h
// as the deterministic randomness source.
func (p RetryPolicy) Timeout(attempt int, h uint64) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		// frac in [-0.5, 0.5) of the jitter band.
		frac := float64(h>>11)/float64(1<<53) - 0.5
		d += time.Duration(frac * p.Jitter * float64(d))
		if d < time.Millisecond {
			d = time.Millisecond
		}
	}
	return d
}
