package network

import (
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/iterator"
	"repro/internal/types"
)

func TestTCPExchangeTwoNodes(t *testing.T) {
	// Two real TCP nodes on loopback; node 0 and node 1 each produce,
	// both send to a consumer instance on each node.
	n0, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewTCPNode(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	peers := map[int]string{0: n0.Addr(), 1: n1.Addr()}
	n0.peers = peers
	n1.peers = peers

	const exID = 7
	in0 := n0.RegisterInbox(0, exID, 0, 2, sch, 16, nil)
	in1 := n1.RegisterInbox(0, exID, 1, 2, sch, 16, nil)

	consumerNodes := []int{0, 1}
	for p, node := range []*TCPNode{n0, n1} {
		ob := node.NewOutbox(0, exID, consumerNodes)
		for d := 0; d < 2; d++ {
			if err := ob.Send(d, mkBlock(int64(100*p+d), int64(100*p+d+50))); err != nil {
				t.Fatal(err)
			}
		}
		if err := ob.CloseSend(); err != nil {
			t.Fatal(err)
		}
	}

	for ci, in := range []*Inbox{in0, in1} {
		got := map[int64]bool{}
		deadline := time.After(5 * time.Second)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				b, st := in.Recv(nil)
				if st != iterator.RecvOK {
					return
				}
				for i := 0; i < b.NumTuples(); i++ {
					got[b.Get(i, 0).I] = true
				}
			}
		}()
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("consumer %d timed out", ci)
		}
		if len(got) != 4 {
			t.Fatalf("consumer %d received %d distinct values, want 4", ci, len(got))
		}
	}
}

func TestTCPBlockContentIntegrity(t *testing.T) {
	n0, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n0.peers = map[int]string{0: n0.Addr()}

	wide := types.NewSchema(
		types.Col("i", types.Int64),
		types.Col("f", types.Float64),
		types.Char("s", 11),
		types.Col("d", types.Date),
	)
	in := n0.RegisterInbox(0, 3, 0, 1, wide, 4, nil)
	ob := n0.NewOutbox(0, 3, []int{0})

	// Build a block with distinctive values and metadata.
	b := mkWide(wide)
	b.VisitRate = 0.75
	b.Seq = 42
	if err := ob.Send(0, b); err != nil {
		t.Fatal(err)
	}
	ob.CloseSend()

	got, st := in.Recv(nil)
	if st != iterator.RecvOK {
		t.Fatalf("recv status %v", st)
	}
	if got.VisitRate != 0.75 {
		t.Fatalf("visit rate lost in transit: %f", got.VisitRate)
	}
	if got.NumTuples() != 3 {
		t.Fatalf("tuples = %d", got.NumTuples())
	}
	if v := got.Get(1, 2).S; v != "hello world" {
		t.Fatalf("string col = %q", v)
	}
	if v := got.Get(2, 1).F; v != 2.5 {
		t.Fatalf("float col = %f", v)
	}
	if _, st := in.Recv(nil); st != iterator.RecvEOF {
		t.Fatalf("expected EOF, got %v", st)
	}
}

func mkWide(wide *types.Schema) *block.Block {
	b := block.New(wide, 1024, nil)
	for i := 0; i < 3; i++ {
		r := b.AppendRowTo()
		types.PutValue(r, wide, 0, types.IntVal(int64(i)))
		types.PutValue(r, wide, 1, types.FloatVal(float64(i)+0.5))
		types.PutValue(r, wide, 2, types.StrVal("hello world"))
		types.PutValue(r, wide, 3, types.DateVal(types.MustParseDate("2010-10-30")))
	}
	return b
}
