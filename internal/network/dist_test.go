package network

import (
	"testing"
	"time"

	"repro/internal/iterator"
)

// TestEphemeralPortsMeshViaSetPeer is the multi-process wiring pattern
// in miniature: two nodes listen on :0 knowing nobody, learn each
// other's bound addresses afterwards (as the membership plane would
// push them), and exchange blocks through DistFabric — each side only
// registers its own inboxes, exactly like two separate processes.
func TestEphemeralPortsMeshViaSetPeer(t *testing.T) {
	n0, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewTCPNode(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	for _, n := range []*TCPNode{n0, n1} {
		n.SetPeer(0, n0.Addr())
		n.SetPeer(1, n1.Addr())
	}

	f0, f1 := NewDistFabric(n0), NewDistFabric(n1)
	const query, exID = 42, 3
	consumers := []int{0, 1}
	ex0 := f0.NewExchange(query, exID, 2, consumers, sch, 8, nil, nil)
	ex1 := f1.NewExchange(query, exID, 2, consumers, sch, 8, nil, nil)

	// Each process only has its local inbox; the other instance is nil.
	if ex0.Inbox(0) == nil || ex0.Inbox(1) != nil {
		t.Fatal("fabric 0 should host instance 0 only")
	}
	if ex1.Inbox(1) == nil || ex1.Inbox(0) != nil {
		t.Fatal("fabric 1 should host instance 1 only")
	}

	for p, ex := range []FabricExchange{ex0, ex1} {
		ob := ex.Outbox(p)
		for d := 0; d < 2; d++ {
			if err := ob.Send(d, mkBlock(int64(100*p+d), int64(100*p+d+10))); err != nil {
				t.Fatal(err)
			}
		}
		if err := ob.CloseSend(); err != nil {
			t.Fatal(err)
		}
	}

	for ci, in := range []*Inbox{ex0.Inbox(0), ex1.Inbox(1)} {
		got := drainCount(t, in, 5*time.Second)
		if got != 4 { // 2 tuples from each of 2 producers
			t.Fatalf("consumer %d received %d tuples, want 4", ci, got)
		}
	}

	// Release drops every registration on both sides.
	ex0.Release()
	ex1.Release()
	if n0.OpenExchanges() != 0 || n1.OpenExchanges() != 0 {
		t.Fatalf("registrations left after release: node0=%d node1=%d",
			n0.OpenExchanges(), n1.OpenExchanges())
	}
}

// TestMeshToolIDsAvoidQueryNamespace is the regression test for the
// claims-node mesh tool squatting on query id 0: its dataflow now
// lives in the reserved id range, so a served query's exchanges —
// including one literally keyed (query just below the reserved base,
// exchange MeshExchangeID) — never share an inbox with it.
func TestMeshToolIDsAvoidQueryNamespace(t *testing.T) {
	n0, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewTCPNode(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	for _, n := range []*TCPNode{n0, n1} {
		n.SetPeer(0, n0.Addr())
		n.SetPeer(1, n1.Addr())
	}

	// The mesh tool's inbox, as claims-node -drive registers it…
	meshIn := n1.RegisterInbox(MeshQueryID, MeshExchangeID, 1, 1, sch, 8, nil)
	// …and a served query reusing the same plan exchange id.
	const servedQID = ReservedQueryIDBase - 1
	queryIn := n1.RegisterInbox(servedQID, MeshExchangeID, 1, 1, sch, 8, nil)

	meshOb := n0.NewOutbox(MeshQueryID, MeshExchangeID, []int{1, 1})
	queryOb := n0.NewOutbox(servedQID, MeshExchangeID, []int{1, 1})
	for i := 0; i < 3; i++ {
		if err := meshOb.Send(1, mkBlock(int64(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := queryOb.Send(1, mkBlock(500, 501)); err != nil {
		t.Fatal(err)
	}
	if err := meshOb.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := queryOb.CloseSend(); err != nil {
		t.Fatal(err)
	}

	if got := drainCount(t, meshIn, 5*time.Second); got != 6 {
		t.Fatalf("mesh inbox received %d tuples, want 6", got)
	}
	if got := drainCount(t, queryIn, 5*time.Second); got != 2 {
		t.Fatalf("query inbox received %d tuples, want 2", got)
	}
}

// drainCount reads an inbox to end-of-stream and returns the tuple
// count, failing the test on timeout.
func drainCount(t *testing.T, in *Inbox, timeout time.Duration) int {
	t.Helper()
	type result struct{ tuples int }
	ch := make(chan result, 1)
	go func() {
		n := 0
		for {
			b, st := in.Recv(nil)
			if st != iterator.RecvOK {
				ch <- result{n}
				return
			}
			n += b.NumTuples()
		}
	}()
	select {
	case r := <-ch:
		return r.tuples
	case <-time.After(timeout):
		t.Fatal("timed out draining inbox")
		return 0
	}
}
