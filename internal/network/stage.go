package network

import (
	"hash/crc32"
	"strconv"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/telemetry"
)

// stager coalesces the frames one exchange sends to one peer into wire
// batches: frames accumulate in a pooled batch buffer and go out in a
// single contiguous write once the batch reaches WireConfig.CoalesceBytes,
// the CoalesceDelay deadline fires, or the stream hits a point where
// waiting cannot help (end of stream, send window full). Small-block
// repartition traffic — the dominant exchange shape — thus pays one
// syscall per batch instead of one per block, and the fast path encodes
// each block exactly once, straight into the bytes the syscall writes.
type stager struct {
	n     *TCPNode
	peer  int
	flow  flowKey
	hash  uint64           // conn-pool slot selector, stable per flow
	scope *telemetry.Scope // sender-side scope for stall/batch accounting

	mu     sync.Mutex
	buf    []byte // pooled batch buffer; nil when empty (batchHdrLen reserved)
	frames int
	gen    uint64 // flush generation; invalidates stale deadline timers
	timer  *time.Timer
	err    error // sticky deadline-flush error, surfaced to the next append
}

// stageKey identifies one stager: the traffic of one (query, exchange)
// toward one peer node.
type stageKey struct {
	peer     int
	query    int
	exchange int
}

// stager returns (creating on first use) the stager for one flow's
// traffic to a peer. The first creator's scope sticks; concurrent
// outboxes of the same exchange share the stager and therefore the
// batch buffer.
func (n *TCPNode) stager(peer, query, exchange int, scope *telemetry.Scope) *stager {
	k := stageKey{peer, query, exchange}
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.stagers[k]
	if !ok {
		s = &stager{
			n: n, peer: peer,
			flow: flowKey{query, exchange},
			hash: flowHash(query, exchange),
		}
		n.stagers[k] = s
	}
	if s.scope == nil {
		s.scope = scope
	}
	return s
}

// appendBlock stages a data frame whose payload is the encoded block,
// serialized directly into the batch buffer (no intermediate copy). The
// frame checksum is computed over the just-written bytes. Returns any
// synchronous flush error — the unreliable fast path surfaces it from
// Send, exactly as v1 surfaced a write error.
func (s *stager) appendBlock(h frameHeader, b *block.Block) error {
	need := frameHdrLen + b.WireSize()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.takeErrLocked(); err != nil {
		return err
	}
	if err := s.ensureLocked(need); err != nil {
		return err
	}
	at := len(s.buf)
	s.buf = s.buf[:at+frameHdrLen]
	s.buf = b.EncodeAppend(s.buf)
	payload := s.buf[at+frameHdrLen:]
	h.length = len(payload)
	h.sum = crc32.Checksum(payload, crcTable)
	putFrameHeader(s.buf[at:], h)
	s.frames++
	return s.maybeFlushLocked()
}

// appendRaw stages one already-encoded frame (reliable-path copies and
// retransmits, eof markers, pre-checksummed by the caller).
func (s *stager) appendRaw(h frameHeader, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.takeErrLocked(); err != nil {
		return err
	}
	if err := s.ensureLocked(frameHdrLen + len(payload)); err != nil {
		return err
	}
	s.buf = appendFrame(s.buf, h, payload)
	s.frames++
	return s.maybeFlushLocked()
}

// flush forces out whatever is staged: end of stream, a send window
// about to block, or a retransmission round that must reach the wire
// now.
func (s *stager) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.takeErrLocked(); err != nil {
		return err
	}
	return s.flushLocked()
}

// takeErrLocked surfaces (and clears) a sticky deadline-flush error, so
// a background write failure is reported on the next send instead of
// vanishing. Reliable-mode flushes never set it — retransmission is the
// recovery there.
func (s *stager) takeErrLocked() error {
	err := s.err
	s.err = nil
	return err
}

// ensureLocked makes room for need more bytes, flushing the current
// batch first when it would not fit, and allocates the pooled batch
// buffer on first use.
func (s *stager) ensureLocked(need int) error {
	if s.buf != nil && len(s.buf)+need > cap(s.buf) {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	if s.buf == nil {
		size := s.n.wireCfg().CoalesceBytes
		if size < need {
			size = need
		}
		raw := block.GetBuf(batchHdrLen + size)
		s.buf = raw[:batchHdrLen]
		s.armTimerLocked()
	}
	return nil
}

// maybeFlushLocked flushes when the staged payload crossed the
// coalescing threshold (<=1 disables coalescing: every frame is its own
// batch).
func (s *stager) maybeFlushLocked() error {
	if cfg := s.n.wireCfg(); len(s.buf)-batchHdrLen >= cfg.CoalesceBytes || cfg.CoalesceBytes <= 1 {
		return s.flushLocked()
	}
	return nil
}

// armTimerLocked schedules the deadline flush for the batch just
// started; the generation check discards the timer if a size/EOF flush
// beat it.
func (s *stager) armTimerLocked() {
	cfg := s.n.wireCfg()
	if cfg.CoalesceBytes <= 1 {
		return // every append flushes synchronously anyway
	}
	gen := s.gen
	s.timer = time.AfterFunc(cfg.CoalesceDelay, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.gen != gen || s.buf == nil {
			return
		}
		if err := s.flushLocked(); err != nil {
			s.err = err
		}
	})
}

// flushLocked stamps the batch header and writes the batch as one
// contiguous write on the flow's pooled connection, after taking the
// node transmit scheduler's turn for this flow. In reliable mode write
// errors are swallowed: the connection is already dropped for redial
// and the send windows retransmit.
func (s *stager) flushLocked() error {
	if s.buf == nil {
		return nil
	}
	buf, frames := s.buf, s.frames
	s.buf, s.frames = nil, 0
	s.gen++
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	putBatchHeader(buf, len(buf)-batchHdrLen, frames)
	err := s.n.transmit(s.peer, s.flow, s.hash, s.scope, buf, frames)
	block.PutBuf(buf)
	if err != nil && s.n.reliable() {
		err = nil
	}
	return err
}

// discard drops any staged bytes without writing them (exchange release
// and node shutdown).
func (s *stager) discard() {
	s.mu.Lock()
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if s.buf != nil {
		block.PutBuf(s.buf)
		s.buf = nil
		s.frames = 0
	}
	s.gen++
	s.mu.Unlock()
}

// transmit ships one finished batch to a peer: acquire the flow's turn
// on the node transmit scheduler (accounting the wait as the exchange's
// net.stall_ns), then one contiguous write on the flow's pooled
// connection.
func (n *TCPNode) transmit(peer int, fl flowKey, hash uint64,
	scope *telemetry.Scope, batch []byte, frames int) error {
	var sp *telemetry.Span
	if scope != nil {
		sp = scope.StartSpan("net.stall ex"+strconv.Itoa(fl.exchange), "net").
			WithNode(n.id).WithBytes(int64(len(batch)))
	}
	stall := n.flow.acquire(fl)
	if stall > 0 {
		n.statStallNs.Add(int64(stall))
		if scope != nil {
			scope.Counter(telemetry.CtrNetStallNs).Add(int64(stall))
			scope.Counter(telemetry.ExCtr(fl.exchange, "stall_ns")).Add(int64(stall))
			scope.Histogram(telemetry.HistNetStall, telemetry.DurationBuckets).Observe(stall.Seconds())
			sp.End()
		}
	}
	err := n.writeBatch(peer, hash, batch)
	n.flow.release()
	n.statBatches.Add(1)
	n.statFrames.Add(int64(frames))
	n.statBytes.Add(int64(len(batch)))
	if scope != nil {
		scope.Counter(telemetry.CtrNetBatches).Inc()
		scope.Counter(telemetry.CtrNetBatchFrames).Add(int64(frames))
	}
	return err
}
