// Package network connects the exchange operators (sender/merger) of
// segments running on different nodes. Two transports are provided:
//
//   - InProc: an in-process transport for single-process clusters with
//     token-bucket NIC emulation, used by tests, examples and the real
//     engine;
//   - TCP (tcp.go): length-prefixed frames over real sockets, used by
//     the claims-node daemon.
//
// Both expose the same Exchange abstraction: a producer group of N
// instances shipping blocks to a consumer group of M instances.
package network

import (
	"fmt"
	"sync"

	"repro/internal/block"
	"repro/internal/iterator"
)

// InProc is the in-process transport: blocks move by pointer between
// goroutine "nodes", with per-node egress/ingress NIC limiters charging
// the wire size of each block for inter-node traffic. Same-node traffic
// bypasses the NIC, as on the paper's cluster.
type InProc struct {
	mu      sync.Mutex
	egress  map[int]*Limiter
	ingress map[int]*Limiter
	rate    float64
}

// NewInProc creates a transport whose per-node NICs are limited to
// bytesPerSec in each direction (0 = unlimited).
func NewInProc(bytesPerSec float64) *InProc {
	return &InProc{
		egress:  make(map[int]*Limiter),
		ingress: make(map[int]*Limiter),
		rate:    bytesPerSec,
	}
}

func (t *InProc) nic(m map[int]*Limiter, node int) *Limiter {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := m[node]
	if !ok {
		l = NewLimiter(t.rate)
		m[node] = l
	}
	return l
}

// NodeEgressBytes reports bytes sent by a node over the emulated NIC.
func (t *InProc) NodeEgressBytes(node int) int64 {
	return t.nic(t.egress, node).Taken()
}

// Exchange wires one producer segment group to one consumer segment
// group. Create it once per exchange edge of the plan, then hand each
// producer instance an Outbox and each consumer instance an Inbox.
type Exchange struct {
	tr            *InProc
	id            int
	consumerNodes []int
	producers     int
	inboxes       []*Inbox
	abortCh       chan struct{}
}

// NewExchange declares an exchange: producers instances will send to
// one inbox per consumer node. bufBlocks bounds each inbox (<=0 means
// unbounded — used by materialized execution, where the entire
// intermediate result is staged in the inbox and accounted against the
// tracker for Table 4).
func (t *InProc) NewExchange(id, producers int, consumerNodes []int,
	bufBlocks int, tracker *block.Tracker) *Exchange {
	ex := &Exchange{
		tr: t, id: id,
		consumerNodes: consumerNodes,
		producers:     producers,
		abortCh:       make(chan struct{}),
	}
	for range consumerNodes {
		ex.inboxes = append(ex.inboxes, newInbox(producers, bufBlocks, tracker))
	}
	return ex
}

// Inbox returns consumer instance i's inbox.
func (e *Exchange) Inbox(i int) *Inbox { return e.inboxes[i] }

// Abort abandons the exchange: every inbox unblocks and discards, and
// pending fault-path retries fail fast. Idempotent.
func (e *Exchange) Abort() {
	select {
	case <-e.abortCh:
	default:
		close(e.abortCh)
	}
	for _, in := range e.inboxes {
		in.Abandon()
	}
}

// Outbox returns an outbox for the producer instance running on the
// given node.
func (e *Exchange) Outbox(producerNode int) iterator.Outbox {
	return &outbox{ex: e, node: producerNode}
}

type outbox struct {
	ex   *Exchange
	node int
}

func (o *outbox) Destinations() int { return len(o.ex.consumerNodes) }

func (o *outbox) Send(dest int, b *block.Block) error {
	if dest < 0 || dest >= len(o.ex.inboxes) {
		return fmt.Errorf("network: bad destination %d", dest)
	}
	destNode := o.ex.consumerNodes[dest]
	if destNode != o.node {
		wire := b.WireSize()
		o.ex.tr.nic(o.ex.tr.egress, o.node).Take(wire)
		o.ex.tr.nic(o.ex.tr.ingress, destNode).Take(wire)
	}
	o.ex.inboxes[dest].put(b)
	return nil
}

func (o *outbox) CloseSend() error {
	for _, in := range o.ex.inboxes {
		in.producerDone()
	}
	return nil
}

// Inbox buffers blocks arriving for one consumer instance and satisfies
// iterator.Inbox. The buffer is a condvar-guarded deque so it can be
// bounded (pipelined modes: backpressure propagates to senders) or
// unbounded (materialized execution).
type Inbox struct {
	mu        sync.Mutex
	notEmpty  *sync.Cond
	notFull   *sync.Cond
	queue     []*block.Block
	capB      int // <=0: unbounded
	expected  int
	done      int
	tracker   *block.Tracker
	buffered  int64
	peakBuf   int64
	received  int64
	abandoned bool
}

func newInbox(producers, capB int, tracker *block.Tracker) *Inbox {
	in := &Inbox{capB: capB, expected: producers, tracker: tracker}
	in.notEmpty = sync.NewCond(&in.mu)
	in.notFull = sync.NewCond(&in.mu)
	return in
}

func (in *Inbox) put(b *block.Block) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.capB > 0 && len(in.queue) >= in.capB && !in.abandoned {
		in.notFull.Wait()
	}
	if in.abandoned {
		return // dead dataflow: drop instead of wedging the producer
	}
	in.queue = append(in.queue, b)
	in.received += int64(b.NumTuples())
	in.buffered += int64(b.SizeBytes())
	if in.buffered > in.peakBuf {
		in.peakBuf = in.buffered
	}
	if in.tracker != nil {
		in.tracker.Alloc(int64(b.SizeBytes()))
	}
	in.notEmpty.Broadcast()
}

// tryPut is put without the backpressure wait: it returns false when a
// bounded inbox is full instead of blocking. The TCP read loop uses it
// to detect that an insert is about to block so it can flush pending
// acks first — acks must never be stuck behind a full inbox.
func (in *Inbox) tryPut(b *block.Block) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.capB > 0 && len(in.queue) >= in.capB && !in.abandoned {
		return false
	}
	if in.abandoned {
		return true // dead dataflow: drop, nothing to wait for
	}
	in.queue = append(in.queue, b)
	in.received += int64(b.NumTuples())
	in.buffered += int64(b.SizeBytes())
	if in.buffered > in.peakBuf {
		in.peakBuf = in.buffered
	}
	if in.tracker != nil {
		in.tracker.Alloc(int64(b.SizeBytes()))
	}
	in.notEmpty.Broadcast()
	return true
}

func (in *Inbox) producerDone() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.done++
	if in.done >= in.expected {
		in.notEmpty.Broadcast()
	}
}

// Recv implements iterator.Inbox with cancellation: a blocked wait is
// woken either by data, by the last producer closing, or by the cancel
// channel (a shrink request against the waiting worker).
func (in *Inbox) Recv(cancel <-chan struct{}) (*block.Block, iterator.RecvStatus) {
	var cancelled bool
	if cancel != nil {
		// Fast-path cancellation check.
		select {
		case <-cancel:
			return nil, iterator.RecvCancelled
		default:
		}
		woke := make(chan struct{})
		go func() {
			select {
			case <-cancel:
				in.mu.Lock()
				cancelled = true
				in.mu.Unlock()
				in.notEmpty.Broadcast()
			case <-woke:
			}
		}()
		defer close(woke)
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if cancelled {
			return nil, iterator.RecvCancelled
		}
		if len(in.queue) > 0 {
			b := in.queue[0]
			in.queue = in.queue[1:]
			in.buffered -= int64(b.SizeBytes())
			if in.tracker != nil {
				in.tracker.Free(int64(b.SizeBytes()))
			}
			in.notFull.Broadcast()
			return b, iterator.RecvOK
		}
		if in.done >= in.expected {
			return nil, iterator.RecvEOF
		}
		in.notEmpty.Wait()
	}
}

// Len returns the number of buffered blocks.
func (in *Inbox) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.queue)
}

// Drained reports whether every producer closed and the queue is empty.
func (in *Inbox) Drained() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.done >= in.expected && len(in.queue) == 0
}

// AllProducersDone reports whether every producer has closed its stream.
func (in *Inbox) AllProducersDone() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.done >= in.expected
}

// Received returns the cumulative tuples received.
func (in *Inbox) Received() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.received
}

// PeakBufferedBytes returns the high-water mark of staged bytes —
// Table 4's materialization footprint.
func (in *Inbox) PeakBufferedBytes() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.peakBuf
}

// Abandon marks the inbox dead: buffered blocks are discarded (their
// tracker bytes freed), blocked producers drop instead of waiting, and
// every Recv — current or future — returns EOF. The engine abandons all
// inboxes of a failed query so neither the transport read loops nor the
// consuming workers stay wedged on a dataflow that will never drain.
func (in *Inbox) Abandon() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.abandoned {
		return
	}
	in.abandoned = true
	if in.tracker != nil && in.buffered > 0 {
		in.tracker.Free(in.buffered)
	}
	in.queue = nil
	in.buffered = 0
	if in.done < in.expected {
		in.done = in.expected
	}
	in.notEmpty.Broadcast()
	in.notFull.Broadcast()
}
