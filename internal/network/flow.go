package network

import (
	"sync"
	"time"
)

// flowScheduler is a node's transmit scheduler: application-level
// network scheduling in the spirit of Rödiger et al. — the node's
// egress is granted to one wire batch at a time, and when several
// exchanges contend, turns rotate round-robin across the active
// (query, exchange) flows rather than first-come-first-served. A wide
// repartition that can saturate the NIC therefore shares the wire in
// alternating batches with every other live exchange instead of
// incast-starving them; the time a flow spends waiting for its turn is
// its measurable protocol overhead, surfaced as net.stall_ns.
//
// The uncontended path is one mutex acquisition: a flow that finds the
// wire idle transmits immediately. Only contending flows queue.
type flowScheduler struct {
	mu    sync.Mutex
	busy  bool
	grant map[flowKey][]chan struct{} // waiters per flow, FIFO
	order []flowKey                   // round-robin rotation of flows with waiters
	next  int                         // rotation cursor
}

// flowKey identifies one exchange's traffic on a node.
type flowKey struct {
	query    int
	exchange int
}

// acquire blocks until the flow is granted the wire and returns how
// long it waited (0 on the uncontended fast path).
func (f *flowScheduler) acquire(k flowKey) time.Duration {
	f.mu.Lock()
	if !f.busy {
		f.busy = true
		f.mu.Unlock()
		return 0
	}
	ch := make(chan struct{})
	if f.grant == nil {
		f.grant = make(map[flowKey][]chan struct{})
	}
	if _, ok := f.grant[k]; !ok {
		f.order = append(f.order, k)
	}
	f.grant[k] = append(f.grant[k], ch)
	f.mu.Unlock()
	t0 := time.Now()
	<-ch
	return time.Since(t0)
}

// release hands the wire to the next flow in rotation, or idles it.
func (f *flowScheduler) release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.order) == 0 {
		f.busy = false
		return
	}
	// Rotate to the next flow with waiters; the cursor survives map
	// churn because order is compacted as flows drain.
	if f.next >= len(f.order) {
		f.next = 0
	}
	k := f.order[f.next]
	q := f.grant[k]
	ch := q[0]
	if len(q) == 1 {
		delete(f.grant, k)
		f.order = append(f.order[:f.next], f.order[f.next+1:]...)
		// cursor now points at the flow after the removed one; keep it.
	} else {
		f.grant[k] = q[1:]
		f.next++
	}
	close(ch) // wire stays busy; ownership transfers to the waiter
}
