package bench

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// simMetricsStub feeds convergenceDelay a synthetic ramp.
var simMetricsStub = sim.Metrics{Trace: []sim.TraceSample{
	{At: 100 * time.Millisecond, Parallelism: map[string]int{"S0": 1}},
	{At: 200 * time.Millisecond, Parallelism: map[string]int{"S0": 6}},
	{At: 300 * time.Millisecond, Parallelism: map[string]int{"S0": 12}},
	{At: 400 * time.Millisecond, Parallelism: map[string]int{"S0": 12}},
}}

func TestFigure8ReportShapes(t *testing.T) {
	r := Figure8()
	if len(r.Rows) != 9 { // header + 8 operator cases
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The compute-bound case must scale far better than the
	// memory-bound one at p=24 (paper Figure 8a).
	var likeRow, dateRow string
	for _, row := range r.Rows {
		if strings.Contains(row, "S-Q1") {
			likeRow = row
		}
		if strings.Contains(row, "S-Q2") {
			dateRow = row
		}
	}
	if likeRow == "" || dateRow == "" {
		t.Fatal("missing operator rows")
	}
	lastField := func(s string) float64 {
		f := strings.Fields(s)
		var v float64
		if _, err := fmt.Sscan(f[len(f)-1], &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	if lastField(likeRow) <= lastField(dateRow) {
		t.Fatalf("compute-bound (%.1f) should out-scale memory-bound (%.1f)",
			lastField(likeRow), lastField(dateRow))
	}
}

func TestFigure10Dynamics(t *testing.T) {
	r, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 10 {
		t.Fatalf("trace too short: %d rows", len(r.Rows))
	}
}

func TestConvergenceDelayHelper(t *testing.T) {
	if d := convergenceDelay(&simMetricsStub); d <= 0 {
		t.Fatalf("convergence delay = %v", d)
	}
}

func TestTable4ShowsMaterializationBlowup(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple cluster simulations")
	}
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// At least one SSE query must show ME well above EP.
	blowup := false
	for _, row := range r.Rows[1:] {
		f := strings.Fields(row)
		if len(f) != 4 {
			continue
		}
		var ep, me float64
		if _, err := parseF(f[1], &ep); err != nil {
			continue
		}
		if _, err := parseF(f[3], &me); err != nil {
			continue
		}
		if me > 2*ep {
			blowup = true
		}
	}
	if !blowup {
		t.Fatalf("no ME memory blow-up visible:\n%s", r)
	}
}

func parseF(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}

func TestRunModeUnknown(t *testing.T) {
	if _, err := runMode("SELECT 1", "tpch", "nope"); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestMeasureExpandIsFast(t *testing.T) {
	d := measureExpand(2)
	if d <= 0 || d > 500*time.Millisecond {
		t.Fatalf("expansion delay = %v", d)
	}
}
