package bench

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/block"
	"repro/internal/iterator"
	"repro/internal/network"
	"repro/internal/types"
)

// NetFabric measures the TCP fabric on the workload the wire protocol
// was rebuilt for: small-block repartition in reliable (ack +
// retransmit) mode. It runs the same traffic twice —
//
//   - baseline: window 1, coalescing off — the v1 stop-and-wait
//     protocol, one frame per write and a full ack round trip per
//     frame;
//   - tuned: the default wire config — windowed sends, coalesced
//     batches, pooled connections;
//
// and reports bytes/sec for each plus the speedup (acceptance target:
// ≥3× on this shape). Per-node transmit-scheduler stall and frames per
// batch come from the nodes' NetStats.
//
// EPBENCH_NET_BLOCKS overrides the per-producer block count (CI uses a
// small value; the default is sized for a stable local measurement).
func NetFabric() (*Report, error) {
	blocks := 20000
	if v := os.Getenv("EPBENCH_NET_BLOCKS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad EPBENCH_NET_BLOCKS %q", v)
		}
		blocks = n
	}

	baseline := network.WireConfig{PoolSize: 1, Window: 1, CoalesceBytes: 1}
	tuned := network.DefaultWireConfig

	r := &Report{Title: "net: wire fabric, reliable small-block repartition"}
	r.notef("2 nodes on loopback, 2 producers x 2 consumers, 64-row blocks, %d blocks/producer", blocks)
	r.notef("reliable mode: every frame acked, retransmit on timeout")

	base, err := netRepartition(baseline, blocks)
	if err != nil {
		return nil, err
	}
	tun, err := netRepartition(tuned, blocks)
	if err != nil {
		return nil, err
	}

	row := func(name string, m netRun) {
		r.addf("%-26s %8.1f MB/s  %7.0f blocks/s  %5.1f frames/batch  stall=%v",
			name, m.mbps(), m.blocksPerSec(), m.framesPerBatch(), m.stall.Round(time.Microsecond))
	}
	row("stop-and-wait (v1 shape)", base)
	row(fmt.Sprintf("windowed+coalesced (w=%d)", tuned.Window), tun)
	speedup := tun.mbps() / base.mbps()
	r.addf("speedup: %.2fx (target >=3x)", speedup)
	if speedup < 3 {
		r.notef("WARNING: below the 3x acceptance target on this machine/run")
	}
	return r, nil
}

type netRun struct {
	elapsed time.Duration
	bytes   int64
	blocks  int64
	batches int64
	frames  int64
	stall   time.Duration
}

func (m netRun) mbps() float64 {
	return float64(m.bytes) / 1e6 / m.elapsed.Seconds()
}

func (m netRun) blocksPerSec() float64 {
	return float64(m.blocks) / m.elapsed.Seconds()
}

func (m netRun) framesPerBatch() float64 {
	if m.batches == 0 {
		return 0
	}
	return float64(m.frames) / float64(m.batches)
}

// netRepartition runs the repartition workload under one wire config
// and returns its measurements.
func netRepartition(cfg network.WireConfig, blocks int) (netRun, error) {
	sch := types.NewSchema(types.Col("k", types.Int64), types.Col("v", types.Int64))
	const rows = 64
	blk := block.New(sch, rows*sch.Stride(), nil)
	for i := 0; i < rows; i++ {
		r := blk.AppendRowTo()
		types.PutValue(r, sch, 0, types.IntVal(int64(i)))
		types.PutValue(r, sch, 1, types.IntVal(int64(i*2)))
	}

	var nodes []*network.TCPNode
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		n, err := network.NewTCPNode(i, "127.0.0.1:0", nil)
		if err != nil {
			return netRun{}, err
		}
		nodes = append(nodes, n)
	}
	pol := network.RetryPolicy{Base: 50 * time.Millisecond, Max: time.Second,
		Deadline: 30 * time.Second, Jitter: 0.2}
	for _, n := range nodes {
		for pid, p := range nodes {
			n.SetPeer(pid, p.Addr())
		}
		n.SetRetryPolicy(pol)
		n.SetWireConfig(cfg)
	}

	ins := make([]*network.Inbox, 2)
	obs := make([]iterator.Outbox, 2)
	for i, n := range nodes {
		ins[i] = n.RegisterInbox(1, 1, i, 2, sch, 64, nil)
	}
	for i, n := range nodes {
		obs[i] = n.NewOutbox(1, 1, []int{0, 1})
	}

	done := make(chan int64, 2)
	for i := range ins {
		go func(in *network.Inbox) {
			var got int64
			for {
				b, st := in.Recv(nil)
				if st != iterator.RecvOK {
					break
				}
				got += int64(b.NumTuples())
			}
			done <- got
		}(ins[i])
	}

	start := time.Now()
	errCh := make(chan error, 2)
	for p := 0; p < 2; p++ {
		go func(ob iterator.Outbox) {
			for i := 0; i < blocks; i++ {
				if err := ob.Send(i%2, blk); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- ob.CloseSend()
		}(obs[p])
	}
	for p := 0; p < 2; p++ {
		if err := <-errCh; err != nil {
			return netRun{}, err
		}
	}
	var tuples int64
	for range ins {
		tuples += <-done
	}
	elapsed := time.Since(start)
	if want := int64(2 * blocks * rows); tuples != want {
		return netRun{}, fmt.Errorf("net: received %d tuples, want %d", tuples, want)
	}

	m := netRun{elapsed: elapsed, blocks: int64(2 * blocks)}
	for _, n := range nodes {
		batches, frames, bytes, stall, _ := n.NetStats()
		m.batches += batches
		m.frames += frames
		m.bytes += bytes
		m.stall += stall
	}
	return m, nil
}
