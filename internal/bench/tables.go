package bench

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sse"
	"repro/internal/tpch"
)

// tpchSF is the paper's TPC-H scale factor (Section 5.1).
const tpchSF = 100

// compileAt compiles a query at paper scale for the simulator.
func compileAt(query string, workload string) (*sim.Graph, error) {
	cat := catalog.New(10)
	switch workload {
	case "tpch":
		tpch.RegisterTables(cat, tpchSF)
	case "sse":
		sse.RegisterTables(cat, sseRows)
	}
	p, err := plan.Compile(query, cat)
	if err != nil {
		return nil, err
	}
	return sim.Compile(p, cat, 10)
}

// runMode executes a compiled graph under one execution mode and
// returns its metrics. Modes:
//
//	EP        — elastic pipelining (real scheduler)
//	SP        — static pipelining, best of a parallelism sweep
//	ME        — materialized execution (stage-at-a-time, unbounded staging)
//	shark     — ME plus per-stage task-launch latency and a JVM-class
//	            interpretation factor (architectural emulation; DESIGN.md §1)
//	impala    — pipelined MPP with single-threaded joins/aggregations per
//	            node [11] and a code-generation cost discount
func runMode(query, workload, mode string) (*sim.Metrics, error) {
	switch mode {
	case "EP":
		return runOne(query, workload, &sim.EPPolicy{Tick: 100 * time.Millisecond}, false, 1)
	case "ME":
		return runOne(query, workload, &sim.StaticPolicy{P: bestStaticP(query, workload, true)}, true, 1)
	case "SP":
		return runOne(query, workload, &sim.StaticPolicy{P: bestStaticP(query, workload, false)}, false, 1)
	case "shark":
		m, err := runOne(query, workload, &sim.StaticPolicy{P: 12}, true, sharkCostFactor)
		if err != nil {
			return nil, err
		}
		// Per-stage task launch: one wave per segment group.
		g, err := compileAt(query, workload)
		if err != nil {
			return nil, err
		}
		m.Elapsed += time.Duration(float64(len(g.Groups)) * sharkStageLaunch * float64(time.Second))
		return m, nil
	case "impala":
		return runImpala(query, workload)
	}
	return nil, fmt.Errorf("bench: unknown mode %q", mode)
}

// Architectural emulation constants (documented substitutions,
// DESIGN.md §1): Shark executes interpreted Scala over the JVM with
// per-stage task scheduling; Impala runs LLVM-generated code but keeps
// joins and aggregations single-threaded per node [11].
const (
	sharkCostFactor  = 2.4
	sharkStageLaunch = 0.6 // seconds per stage wave
	impalaCostFactor = 0.55
)

func runOne(query, workload string, pol sim.Policy, materialized bool,
	costFactor float64) (*sim.Metrics, error) {
	g, err := compileAt(query, workload)
	if err != nil {
		return nil, err
	}
	if materialized {
		for _, e := range g.Edges {
			e.QueueCapTuples = 0
		}
	}
	s, err := sim.New(paperCluster(), g, pol)
	if err != nil {
		return nil, err
	}
	s.MaxVirtual = 6 * time.Hour
	s.Materialized = materialized
	if costFactor != 1 {
		s.CostFactor = costFactor
	}
	if _, static := pol.(*sim.StaticPolicy); static {
		s.PartitionEff = sim.StaticPartitionEff()
	}
	return s.Run()
}

// bestStaticP emulates the paper's methodology for SP and ME: it
// registers a sweep of constant parallelism assignments and reports
// only the best (Section 5.4).
func bestStaticP(query, workload string, materialized bool) int {
	best, bestT := 1, time.Duration(1<<62)
	for _, p := range []int{1, 2, 4, 8, 12, 24} {
		m, err := runOne(query, workload, &sim.StaticPolicy{P: p}, materialized, 1)
		if err != nil {
			continue
		}
		if m.Elapsed < bestT {
			bestT = m.Elapsed
			best = p
		}
	}
	return best
}

// runImpala caps every group containing a blocking operator (join
// build stage or aggregation) at one core per node and discounts costs
// for code generation.
func runImpala(query, workload string) (*sim.Metrics, error) {
	g, err := compileAt(query, workload)
	if err != nil {
		return nil, err
	}
	caps := make(map[int]int)
	for _, sg := range g.Groups {
		p := 24
		for _, st := range sg.Stages {
			if st.EmitAtEnd && p > 8 {
				// Single-threaded aggregation fed by a parallel scan
				// pipeline overlaps partially.
				p = 8
			}
			if st.Name == "build" {
				p = 1 // single-threaded joins [11]
			}
		}
		caps[sg.ID] = p
	}
	s, err := sim.New(paperCluster(), g, &sim.CappedPolicy{Caps: caps, Default: 24})
	if err != nil {
		return nil, err
	}
	s.MaxVirtual = 6 * time.Hour
	s.CostFactor = impalaCostFactor
	s.PartitionEff = sim.StaticPartitionEff()
	return s.Run()
}

// Table4 reports peak memory consumption of the SSE queries under EP,
// SP and ME (Section 5.4, Table 4): materialization stages entire
// intermediate results; pipelining holds only bounded buffers plus
// operator state.
func Table4() (*Report, error) {
	r := &Report{Title: "Table 4: memory consumption (GB)"}
	r.addf("%-8s %10s %10s %10s", "query", "EP", "SP", "ME")
	for _, id := range sse.EvaluatedQueries {
		row := fmt.Sprintf("%-8s", id)
		for _, mode := range []string{"EP", "SP", "ME"} {
			m, err := runMode(sse.Queries[id], "sse", mode)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", id, mode, err)
			}
			row += fmt.Sprintf(" %10.2f", m.PeakMemBytes/1e9)
		}
		r.Rows = append(r.Rows, row)
	}
	r.notef("pipelined modes hold bounded exchange buffers + hash state;" +
		" ME stages full intermediate results (cf. paper Table 4)")
	return r, nil
}

// table5Workload is the query set Table 5 averages over: all evaluated
// TPC-H queries plus the SSE queries (the paper runs "all the SSE and
// TPC-H queries").
func table5Workload() []struct{ q, w string } {
	var out []struct{ q, w string }
	for _, id := range tpch.EvaluatedQueries {
		out = append(out, struct{ q, w string }{tpch.Queries[id], "tpch"})
	}
	for _, id := range sse.EvaluatedQueries {
		out = append(out, struct{ q, w string }{sse.Queries[id], "sse"})
	}
	return out
}

// Table5 compares EP against implicit scheduling (IS) and
// morsel-driven parallelism (MDP, MDP+ at 64K and 8K units) across
// concurrency levels, averaged over the full query set: CPU
// utilization, context switches, scheduling overhead, cache-miss ratio
// and response time (Section 5.4, Table 5).
func Table5() (*Report, error) {
	r := &Report{Title: "Table 5: comparison with baseline scheduling methods"}
	type cfg struct {
		label  string
		policy func() sim.Policy
		name   string
		c      int
		unitKB int
	}
	var cfgs []cfg
	for _, c := range []int{1, 2, 5} {
		c := c
		cfgs = append(cfgs, cfg{fmt.Sprintf("IS c=%d", c),
			func() sim.Policy { return &sim.ISPolicy{C: c} }, "IS", c, 0})
	}
	for _, c := range []int{1, 2, 5} {
		c := c
		cfgs = append(cfgs, cfg{fmt.Sprintf("MDP c=%d", c),
			func() sim.Policy { return &sim.MDPPolicy{C: c, UnitBytes: 64 << 10} }, "MDP", c, 64})
	}
	for _, c := range []int{1, 2, 5} {
		c := c
		cfgs = append(cfgs, cfg{fmt.Sprintf("MDP+64K c=%d", c),
			func() sim.Policy { return &sim.MDPPolicy{C: c, Plus: true, UnitBytes: 64 << 10} }, "MDP+", c, 64})
	}
	for _, c := range []int{1, 2, 5} {
		c := c
		cfgs = append(cfgs, cfg{fmt.Sprintf("MDP+8K c=%d", c),
			func() sim.Policy { return &sim.MDPPolicy{C: c, Plus: true, UnitBytes: 8 << 10} }, "MDP+", c, 8})
	}
	cfgs = append(cfgs, cfg{"EP c=1",
		func() sim.Policy { return &sim.EPPolicy{Tick: 100 * time.Millisecond} }, "EP", 1, 0})

	r.addf("%-14s %9s %12s %11s %10s %12s", "method",
		"CPU(%)", "ctxsw/s(k)", "sched(%)", "cachemiss", "resp(s)")
	queries := table5Workload()
	for _, cf := range cfgs {
		var sumResp, sumUtil, sumOverheadFrac float64
		n := 0
		for _, qw := range queries {
			m, err := runOne(qw.q, qw.w, cf.policy(), false, 1)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", cf.label, err)
			}
			sumResp += m.Elapsed.Seconds()
			sumUtil += m.CPUUtilization()
			if m.Elapsed > 0 {
				sumOverheadFrac += m.SchedOverheadSec /
					(m.Elapsed.Seconds() * float64(10*24))
			}
			n++
		}
		ctxsw := sim.ModelContextSwitches(cf.name, cf.c) / 1000
		miss := sim.ModelCacheMiss(cf.name, cf.c)
		overheadPct := 100 * sumOverheadFrac / float64(n)
		if cf.name == "IS" {
			r.addf("%-14s %9.1f %12.1f %11s %10.2f %12.1f", cf.label,
				100*sumUtil/float64(n), ctxsw, "n/a", miss, sumResp/float64(n))
			continue
		}
		r.addf("%-14s %9.1f %12.1f %11.2f %10.2f %12.1f", cf.label,
			100*sumUtil/float64(n), ctxsw, overheadPct, miss, sumResp/float64(n))
	}
	r.notef("averages over %d queries (11 TPC-H + 4 SSE);"+
		" context switches and cache-miss ratio use the documented locality"+
		" model (sim.ModelContextSwitches / ModelCacheMiss)", len(queries))
	return r, nil
}

// Table6 reports the high-utilization rate (fraction of time slices
// with CPU or network utilization ≥ θu = 0.95) and response time for
// the compute-, network- and mixed-bound representatives TPC-H Q1, Q9
// and Q14 under IS, MDP and EP (Section 5.4, Table 6).
func Table6() (*Report, error) {
	r := &Report{Title: "Table 6: hardware utilization (θu = 0.95)"}
	r.addf("%-10s | %8s %8s %8s | %9s %9s %9s", "query",
		"IS hi%", "MDP hi%", "EP hi%", "IS s", "MDP s", "EP s")
	for _, id := range []string{"Q1", "Q9", "Q14"} {
		pols := []sim.Policy{
			&sim.ISPolicy{C: 5},
			&sim.MDPPolicy{C: 5, UnitBytes: 64 << 10},
			&sim.EPPolicy{Tick: 100 * time.Millisecond},
		}
		var hi [3]float64
		var resp [3]float64
		for i, pol := range pols {
			m, err := runOne(tpch.Queries[id], "tpch", pol, false, 1)
			if err != nil {
				return nil, err
			}
			hi[i] = 100 * m.HighUtilizationRate(0.95)
			resp[i] = m.Elapsed.Seconds()
		}
		r.addf("TPC-H-%-4s | %8.1f %8.1f %8.1f | %9.1f %9.1f %9.1f", id,
			hi[0], hi[1], hi[2], resp[0], resp[1], resp[2])
	}
	r.notef("EP drives either CPU or network to saturation for most of the" +
		" query lifetime (cf. paper Table 6)")
	return r, nil
}

// Table7 reports response times of the evaluated TPC-H and SSE queries
// under ME / SP / EP and the architectural emulations of Shark and
// Impala (Section 5.4, Table 7).
func Table7() (*Report, error) {
	r := &Report{Title: "Table 7: response time (s) — CLAIMS (ME/SP/EP) vs Shark vs Impala"}
	r.addf("%-10s %9s %9s %9s %9s %9s", "query", "ME", "SP", "EP", "Shark", "Impala")
	emit := func(label, q, w string) error {
		row := fmt.Sprintf("%-10s", label)
		for _, mode := range []string{"ME", "SP", "EP", "shark", "impala"} {
			m, err := runMode(q, w, mode)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", label, mode, err)
			}
			row += fmt.Sprintf(" %9.1f", m.Elapsed.Seconds())
		}
		r.Rows = append(r.Rows, row)
		return nil
	}
	for _, id := range tpch.EvaluatedQueries {
		if err := emit("TPC-H-"+id, tpch.Queries[id], "tpch"); err != nil {
			return nil, err
		}
	}
	for _, id := range sse.EvaluatedQueries {
		if err := emit(id, sse.Queries[id], "sse"); err != nil {
			return nil, err
		}
	}
	r.notef("SP/ME report the best of a {1,2,4,8,12,24} parallelism sweep" +
		" (the paper's best-of-10 manual registration); Shark/Impala are" +
		" architectural emulations per DESIGN.md §1")
	return r, nil
}
