package bench

import (
	"time"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sql"
	"repro/internal/sse"
	"repro/internal/tpch"
)

// AblationPartialAgg measures the design choice DESIGN.md calls out:
// the paper's plans repartition raw rows before aggregating (Figure
// 1b), while an optimizing planner can pre-aggregate per node. The
// ablation runs representative queries both ways at paper scale and
// reports response time and network volume.
func AblationPartialAgg() (*Report, error) {
	r := &Report{Title: "Ablation: partial aggregation before the repartition"}
	r.addf("%-10s | %12s %12s | %12s %12s", "query",
		"raw resp(s)", "raw net(GB)", "pagg resp(s)", "pagg net(GB)")

	cases := []struct{ id, q, w string }{
		{"SSE-Q7", sse.Queries["SSE-Q7"], "sse"},
		{"SSE-Q9", sse.Queries["SSE-Q9"], "sse"},
		{"TPC-H-Q3", tpch.Queries["Q3"], "tpch"},
		{"TPC-H-Q10", tpch.Queries["Q10"], "tpch"},
	}
	for _, cs := range cases {
		var resp [2]float64
		var net [2]float64
		for i, partial := range []bool{false, true} {
			m, err := runWithOptions(cs.q, cs.w, plan.Options{PartialAgg: partial})
			if err != nil {
				return nil, err
			}
			resp[i] = m.Elapsed.Seconds()
			net[i] = m.NetBytes / 1e9
		}
		r.addf("%-10s | %12.1f %12.2f | %12.1f %12.2f", cs.id,
			resp[0], net[0], resp[1], net[1])
	}
	r.notef("partial aggregation collapses exchange volume when the group" +
		" count is small relative to the input; for high-cardinality keys" +
		" the hash state costs more than the network saves")
	return r, nil
}

// runWithOptions compiles at paper scale with explicit lowering options
// and simulates under EP.
func runWithOptions(query, workload string, opts plan.Options) (*sim.Metrics, error) {
	cat := catalog.New(10)
	switch workload {
	case "tpch":
		tpch.RegisterTables(cat, tpchSF)
	case "sse":
		sse.RegisterTables(cat, sseRows)
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	logical, err := plan.Build(stmt, cat)
	if err != nil {
		return nil, err
	}
	p, err := plan.LowerOpts(logical, opts)
	if err != nil {
		return nil, err
	}
	g, err := sim.Compile(p, cat, 10)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(paperCluster(), g, &sim.EPPolicy{Tick: 100 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	s.MaxVirtual = 6 * time.Hour
	return s.Run()
}
