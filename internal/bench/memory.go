package bench

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/sse"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// memRows sizes the memory-governance experiment's SSE tables. The
// EPBENCH_MEM_ROWS environment variable overrides it (CI uses a small
// value so the smoke run finishes in seconds).
func memRows() int {
	if v := os.Getenv("EPBENCH_MEM_ROWS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 60_000
}

// memFingerprint canonicalizes a result as sorted rows, so the
// constrained and unconstrained phases compare order-insensitively.
func memFingerprint(res *engine.Result) string {
	rows := res.Rows()
	lines := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			if v.Kind == types.Float64 && !v.Null {
				parts[j] = fmt.Sprintf("%.6g", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		lines[i] = strings.Join(parts, ",")
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// memCluster builds one experiment cluster with the given per-node
// budget (0 = unconstrained).
func memCluster(nodes int, rows int, budget int64) (*engine.Cluster, error) {
	cat := catalog.New(nodes)
	sse.RegisterTables(cat, int64(rows))
	c := engine.NewCluster(engine.Config{
		Nodes:         nodes,
		CoresPerNode:  4,
		Mode:          engine.EP,
		MemoryPerNode: budget,
	}, cat)
	if err := sse.Load(c, sse.GenConfig{Rows: rows, Seed: 1}); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// memRun drives the query mix concurrently through the admission front
// end and returns per-query fingerprints plus the summed spill
// counters.
func memRun(c *engine.Cluster, queries []string) ([]string, int64, int64, error) {
	srv := server.New(c, server.Config{
		MaxInflight:  len(queries),
		QueueTimeout: 5 * time.Minute,
	})
	fps := make([]string, len(queries))
	errs := make([]error, len(queries))
	var spillEvents, spillBytes int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			res, err := srv.Query(context.Background(), q)
			if err != nil {
				errs[i] = err
				return
			}
			fps[i] = memFingerprint(res)
			mu.Lock()
			spillEvents += res.Scope.Counter(telemetry.CtrSpillEvents).Load()
			spillBytes += res.Scope.Counter(telemetry.CtrSpillBytes).Load()
			mu.Unlock()
		}(i, q)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, 0, 0, fmt.Errorf("query %d: %w", i, err)
		}
	}
	return fps, spillEvents, spillBytes, nil
}

// MemGovernance is the memory-governance experiment: the same
// concurrent group-by mix runs twice — unconstrained to learn its
// per-node working-set peak, then under a per-node budget of half that
// peak. The constrained phase must complete every query with identical
// results, degrading through the elasticity ladder (refused pool
// expansions, forced shrinks) and finally spilling hash partitions, and
// its tracked peak must stay at the budget (small soft-path slop).
func MemGovernance() (*Report, error) {
	r := &Report{Title: "Extension: memory governance (budgets, degradation, spill)"}
	const nodes = 2
	rows := memRows()
	r.notef("rows=%d nodes=%d cores=4 (EPBENCH_MEM_ROWS overrides rows)", rows, nodes)

	// Heavy group-bys: order_no is unique per row, so its aggregation
	// state is proportional to the table itself.
	queries := []string{
		`SELECT order_no, sum(entry_volume) FROM Securities GROUP BY order_no`,
		`SELECT acct_id, sum(trade_volume) FROM Trades GROUP BY acct_id`,
		`SELECT order_no, sum(entry_volume) FROM Securities GROUP BY order_no`,
		`SELECT acct_id, sum(trade_volume) FROM Trades GROUP BY acct_id`,
	}

	// Phase A: unconstrained — learn the peak.
	free, err := memCluster(nodes, rows, 0)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	wantFps, freeSpills, _, err := memRun(free, queries)
	freeDur := time.Since(t0)
	if err != nil {
		free.Close()
		return nil, fmt.Errorf("unconstrained phase: %w", err)
	}
	var peak int64
	for i := 0; i <= nodes; i++ {
		_, pk, _ := free.NodeMemory(i)
		if pk > peak {
			peak = pk
		}
	}
	free.Close()
	if freeSpills != 0 {
		return nil, fmt.Errorf("unconstrained phase spilled (%d events)", freeSpills)
	}
	if peak == 0 {
		return nil, fmt.Errorf("unconstrained phase tracked no memory")
	}
	r.addf("unconstrained: peak=%d B/node, makespan=%v", peak, freeDur.Round(time.Millisecond))

	// Phase B: half the peak per node.
	budget := peak / 2
	tight, err := memCluster(nodes, rows, budget)
	if err != nil {
		return nil, err
	}
	defer tight.Close()
	t0 = time.Now()
	gotFps, spills, spillBytes, err := memRun(tight, queries)
	tightDur := time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("constrained phase: %w", err)
	}
	for i := range wantFps {
		if gotFps[i] != wantFps[i] {
			return nil, fmt.Errorf("query %d: results differ under the budget", i)
		}
	}
	if spills == 0 {
		return nil, fmt.Errorf("constrained phase did not spill; budget %d not binding", budget)
	}
	var tightPeak int64
	for i := 0; i <= nodes; i++ {
		_, pk, _ := tight.NodeMemory(i)
		if pk > tightPeak {
			tightPeak = pk
		}
	}
	r.addf("budget=%d B/node: peak=%d B/node, makespan=%v", budget, tightPeak, tightDur.Round(time.Millisecond))
	r.addf("spill events: %d (bytes: %d)", spills, spillBytes)
	r.addf("all %d queries fingerprint-matched the unconstrained run", len(queries))
	if slop := tightPeak - budget; slop > 0 {
		r.notef("tracked peak overshot the budget by %d B via the documented soft paths", slop)
	}
	return r, nil
}
