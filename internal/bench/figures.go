package bench

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/elastic"
	"repro/internal/expr"
	"repro/internal/iterator"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sse"
	"repro/internal/storage"
	"repro/internal/types"
)

// paperCluster is the paper's testbed (Section 5.1, Table 3): 10 nodes,
// 2×6 physical cores (24 logical), Gigabit Ethernet.
func paperCluster() sim.Cluster {
	return sim.Cluster{Nodes: 10, Cores: 12, HTCores: 24, NetBps: 125e6,
		MemBps: 8e9, Quantum: 5 * time.Millisecond}
}

// sseRows is the per-table cardinality of the SSE dataset (Section 5.1).
const sseRows = 840_000_000

// Figure8 regenerates the operator-scalability study: speedup of
// filter (S-Q1 compute-bound, S-Q2 data-bound), hash aggregation (S-Q3
// group-by cardinality 4, S-Q4 cardinality 250M; shared vs independent
// algorithms), and hash join (build and probe phases) as intra-segment
// parallelism grows from 1 to 24.
//
// The curves derive from the simulator's service-rate law — compute
// scaling with a hyper-threading knee at 12 cores, a shared
// memory-bandwidth ceiling, and an Amdahl-style contention ceiling for
// shared hash tables — with per-tuple costs calibrated by cmd/calibrate
// against the real operators.
func Figure8() *Report {
	r := &Report{Title: "Figure 8: scalability of intra-segment parallelism (speedup vs p)"}
	c := paperCluster()

	type opCase struct {
		name     string
		cost     float64 // ns/tuple at p=1
		memBytes float64 // bytes of memory traffic per tuple
		critFrac float64 // shared-structure contention fraction
	}
	cases := []opCase{
		// S-Q1: double-wildcard NOT LIKE — compute-dominated.
		{"S-Q1 filter (LIKE)", 560, 64, 0},
		// S-Q2: date comparison — memory-bandwidth-dominated, the
		// paper's plateau at ~8 cores.
		{"S-Q2 filter (date)", 110, 110, 0},
		// S-Q3 group-by cardinality 4: shared table serializes ~20% of
		// the per-tuple work; independent tables do not contend.
		{"S-Q3 agg shared", 460, 72, 0.18},
		{"S-Q3 agg independent", 460, 72, 0},
		// S-Q4 cardinality 250M: contention is negligible either way.
		{"S-Q4 agg shared", 460, 96, 0.005},
		{"S-Q4 agg independent", 460, 96, 0},
		// S-Q5: lock-free-style sharded join table.
		{"S-Q5 join build", 560, 96, 0.01},
		{"S-Q5 join probe", 560, 80, 0},
	}
	ps := []int{1, 2, 4, 8, 12, 16, 20, 24}
	header := "operator                "
	for _, p := range ps {
		header += fmt.Sprintf("%7s", fmt.Sprintf("p=%d", p))
	}
	r.Rows = append(r.Rows, header)
	for _, oc := range cases {
		st := &sim.Stage{CostPerTuple: oc.cost * 1e-9,
			MemBytesPerTuple: oc.memBytes, CritFrac: oc.critFrac}
		base := rateWithMem(&c, st, 1)
		row := fmt.Sprintf("%-24s", oc.name)
		for _, p := range ps {
			row += fmt.Sprintf("%7.1f", rateWithMem(&c, st, p)/base)
		}
		r.Rows = append(r.Rows, row)
	}
	r.notef("speedup normalized to p=1; HT knee at 12 physical cores;" +
		" S-Q2 plateaus on the shared memory-bandwidth ceiling;" +
		" S-Q3 shared flattens on hash-table contention (cf. paper Fig. 8)")
	return r
}

// rateWithMem applies the node memory-bandwidth ceiling to the service
// rate (single segment alone on the node, as in the paper's
// micro-benchmark).
func rateWithMem(c *sim.Cluster, st *sim.Stage, p int) float64 {
	r := c.Rate(st, float64(p))
	if st.MemBytesPerTuple > 0 {
		memCap := c.MemBps / st.MemBytesPerTuple
		if r > memCap {
			r = memCap
		}
	}
	return r
}

// Figure9 measures expansion and shrinkage delays on the REAL elastic
// iterators: expansion = Expand() call to the worker's first productive
// action; shrinkage = termination request to complete worker exit, as a
// function of segment composition (Section 5.2).
func Figure9() *Report {
	r := &Report{Title: "Figure 9: overhead of expansion and shrinkage (real engine)"}

	// (a) expansion delay vs number of iterators in the segment.
	r.Rows = append(r.Rows, "(a) expansion delay vs #iterators")
	for nIters := 1; nIters <= 5; nIters++ {
		d := measureExpand(nIters)
		r.addf("  %d iterators: %8.3f ms (avg of 20)", nIters, d.Seconds()*1e3)
	}

	// (b) shrinkage delay vs segment composition.
	r.Rows = append(r.Rows, "(b) shrinkage delay by segment composition")
	comps := []struct {
		name  string
		joins int
		agg   bool
	}{
		{"scan-filter", 0, false},
		{"scan-filter-join", 1, false},
		{"scan-filter-agg", 0, true},
		{"scan-filter-join-agg", 1, true},
		{"scan-filter-join-join-agg", 2, true},
		{"scan-filter-join-join-join-agg", 3, true},
	}
	for _, comp := range comps {
		d := measureShrink(comp.joins, comp.agg)
		r.addf("  %-32s %8.3f ms (avg of 10)", comp.name, d.Seconds()*1e3)
	}
	r.notef("expansion stays sub-millisecond and nearly composition-independent;" +
		" shrinkage grows with the work pending in the active stage (cf. paper Fig. 9)")
	return r
}

var fig9Sch = types.NewSchema(types.Col("k", types.Int64), types.Col("v", types.Int64))

func fig9Partition(rows int) *storage.Partition {
	st := storage.NewStore(1)
	p := st.CreatePartition("t", fig9Sch)
	l := storage.NewLoader(p, 32*1024)
	for i := 0; i < rows; i++ {
		rec := l.Row()
		types.PutValue(rec, fig9Sch, 0, types.IntVal(int64(i%1000)))
		types.PutValue(rec, fig9Sch, 1, types.IntVal(int64(i)))
	}
	l.Close()
	return p
}

func filterChain(depth int, rows int) iterator.Iterator {
	var it iterator.Iterator = iterator.NewScan(fig9Partition(rows))
	for i := 0; i < depth; i++ {
		it = iterator.NewFilter(it, fig9Sch,
			expr.NewCmp(expr.GE, expr.NewCol(1, "v"), expr.NewConst(types.IntVal(-1))))
	}
	return it
}

func measureExpand(nIters int) time.Duration {
	const trials = 20
	var total time.Duration
	for t := 0; t < trials; t++ {
		el := elastic.New(filterChain(nIters-1, 200_000), elastic.Config{BufferCap: 512})
		el.Expand(0, 0)
		done := make(chan struct{})
		go func() {
			ctx := &iterator.Ctx{Term: &iterator.TermFlag{}}
			for {
				if _, st := el.Next(ctx); st != iterator.OK {
					close(done)
					return
				}
			}
		}()
		time.Sleep(200 * time.Microsecond)
		el.Expand(1, 0)
		<-done
		for _, d := range el.ExpandDelays()[1:] {
			total += d
		}
		el.Close()
	}
	return total / time.Duration(trials)
}

func measureShrink(joins int, agg bool) time.Duration {
	const trials = 10
	var total time.Duration
	n := 0
	for t := 0; t < trials; t++ {
		var it iterator.Iterator = filterChain(1, 400_000)
		for j := 0; j < joins; j++ {
			build := iterator.NewScan(fig9Partition(2_000))
			it = iterator.NewHashJoin(build, it, fig9Sch, fig9Sch,
				[]expr.Expr{expr.NewCol(0, "k")}, []expr.Expr{expr.NewCol(0, "k")})
		}
		if agg {
			it = iterator.NewHashAgg(it, it.(interface{ Schema() *types.Schema }).Schema(),
				[]expr.Expr{expr.NewCol(0, "k")}, []string{"k"},
				[]iterator.AggSpec{{Func: iterator.Count, Name: "c"}},
				iterator.HybridAgg)
		}
		el := elastic.New(it, elastic.Config{BufferCap: 512})
		el.Expand(0, 0)
		el.Expand(1, 0)
		go func() {
			ctx := &iterator.Ctx{Term: &iterator.TermFlag{}}
			for {
				if _, st := el.Next(ctx); st != iterator.OK {
					return
				}
			}
		}()
		time.Sleep(2 * time.Millisecond) // let workers enter the chain
		if ch := el.Shrink(); ch != nil {
			select {
			case d := <-ch:
				total += d
				n++
			case <-time.After(5 * time.Second):
			}
		}
		el.Close()
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// sseQ9Graph compiles SSE-Q9 through the real planner at paper scale.
func sseQ9Graph() (*sim.Graph, error) {
	cat := catalog.New(10)
	sse.RegisterTables(cat, sseRows)
	p, err := plan.Compile(sse.Queries["SSE-Q9"], cat)
	if err != nil {
		return nil, err
	}
	return sim.Compile(p, cat, 10)
}

// traceReport renders a parallelism trace as a time series table.
func traceReport(r *Report, m *sim.Metrics, every time.Duration) {
	r.addf("%8s %4s %4s %4s", "t(s)", "S1", "S2", "S3")
	last := -every
	for _, tr := range m.Trace {
		if tr.At-last < every {
			continue
		}
		last = tr.At
		r.addf("%8.1f %4d %4d %4d", tr.At.Seconds(),
			tr.Parallelism["S0"], tr.Parallelism["S1"], tr.Parallelism["S2"])
	}
}

// Figure10 traces per-segment parallelism of SSE-Q9 under the dynamic
// scheduler (Section 5.3): S1 expands first, hands off to S2 as the
// hash build becomes the bottleneck, the network caps both, then P2
// shifts cores to S2/S3.
func Figure10() (*Report, error) {
	r := &Report{Title: "Figure 10: parallelism dynamics of elastic pipelining on SSE-Q9"}
	g, err := sseQ9Graph()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(paperCluster(), g, &sim.EPPolicy{Tick: 100 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	s.TraceEvery = 100 * time.Millisecond
	m, err := s.Run()
	if err != nil {
		return nil, err
	}
	r.notef("response time %.1fs, CPU util %.0f%%, network %.1f GB",
		m.Elapsed.Seconds(), 100*m.CPUUtilization(), m.NetBytes/1e9)
	traceReport(r, m, m.Elapsed/24)
	return r, nil
}

// Figure11 repeats SSE-Q9 with Trades partitions sorted by trade_date:
// filter selectivity is 0 for the long prefix, then bursts to 1. The
// scheduler shrinks the starved S2 and expands S1 early, then flips
// when the burst arrives (Section 5.3).
func Figure11() (*Report, error) {
	r := &Report{Title: "Figure 11: adaptivity to selectivity fluctuation (sorted trade_date)"}
	g, err := sseQ9Graph()
	if err != nil {
		return nil, err
	}
	// Sorted layout: the scan's filter passes nothing until the final
	// 1/60 of the input, then everything.
	s1 := &g.Groups[0].Stages[len(g.Groups[0].Stages)-1]
	s1.SelProfile = func(prog float64) float64 {
		if prog < 59.0/60 {
			return 0
		}
		return 1
	}
	s, err := sim.New(paperCluster(), g, &sim.EPPolicy{Tick: 100 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	s.TraceEvery = 100 * time.Millisecond
	m, err := s.Run()
	if err != nil {
		return nil, err
	}
	r.notef("response time %.1fs; selectivity jumps 0→1 at 59/60 of the scan",
		m.Elapsed.Seconds())
	traceReport(r, m, m.Elapsed/24)
	return r, nil
}

// Figure12 runs SSE-Q9 while a CPU-intensive interference program
// claims most cores on a 20s-on/20s-off duty cycle; the scheduler must
// shrink while it runs and re-expand when it pauses (Section 5.3).
func Figure12() (*Report, error) {
	r := &Report{Title: "Figure 12: adaptivity to an interfering CPU-bound program"}
	g, err := sseQ9Graph()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(paperCluster(), g, &sim.EPPolicy{Tick: 100 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	s.TraceEvery = 100 * time.Millisecond
	// The paper's interference runs 20s of every 40s on a ~160s query;
	// our simulated query is ~20x shorter, so the duty cycle scales to
	// 2s-on / 2s-off to show several adaptation rounds.
	s.ExternalCores = func(now time.Duration) float64 {
		if int(now.Seconds())%4 < 2 {
			return 20 // interference claims 20 of 24 logical cores
		}
		return 0
	}
	m, err := s.Run()
	if err != nil {
		return nil, err
	}
	r.notef("interference active 2s of every 4s (scaled duty cycle); response time %.1fs",
		m.Elapsed.Seconds())
	traceReport(r, m, m.Elapsed/24)
	return r, nil
}

// Figure13 sweeps the initial intra-segment parallelism 1..12 and
// reports response time and convergence delay: the time until the
// scheduler last materially changed the allocation during the first
// pipeline (Section 5.3 — robustness to the initial assignment).
func Figure13() (*Report, error) {
	r := &Report{Title: "Figure 13: robustness to initial parallelism (SSE-Q9)"}
	r.addf("%8s %14s %18s", "init p", "response (s)", "convergence (s)")
	for p0 := 1; p0 <= 12; p0++ {
		g, err := sseQ9Graph()
		if err != nil {
			return nil, err
		}
		s, err := sim.New(paperCluster(), g,
			&sim.EPPolicy{Tick: 100 * time.Millisecond, InitialP: p0})
		if err != nil {
			return nil, err
		}
		s.TraceEvery = 100 * time.Millisecond
		m, err := s.Run()
		if err != nil {
			return nil, err
		}
		r.addf("%8d %14.1f %18.1f", p0, m.Elapsed.Seconds(),
			convergenceDelay(m).Seconds())
	}
	r.notef("response time is nearly flat across initial assignments — the" +
		" self-tuning property (cf. paper Fig. 13)")
	return r, nil
}

// convergenceDelay estimates how long the scheduler took to settle: the
// first time the cluster-wide allocation reaches 90% of its steady
// maximum.
func convergenceDelay(m *sim.Metrics) time.Duration {
	if len(m.Trace) == 0 {
		return 0
	}
	totals := make([]int, len(m.Trace))
	maxTotal := 0
	for i, tr := range m.Trace {
		for _, p := range tr.Parallelism {
			totals[i] += p
		}
		if totals[i] > maxTotal {
			maxTotal = totals[i]
		}
	}
	for i, tot := range totals {
		if float64(tot) >= 0.9*float64(maxTotal) {
			return m.Trace[i].At
		}
	}
	return m.Trace[len(m.Trace)-1].At
}
