package bench

import (
	"time"

	"repro/internal/sim"
	"repro/internal/sse"
	"repro/internal/tpch"
)

// MultiQuery exercises the paper's Section 7 extension: several queries
// sharing the cluster under one dynamic scheduler. It runs SSE-Q9 and
// TPC-H Q1 (a network-heavy join pipeline and a compute-heavy
// aggregation) first in isolation and then concurrently, reporting the
// slowdown each suffers from sharing — the scheduler should interleave
// them instead of serializing.
func MultiQuery() (*Report, error) {
	r := &Report{Title: "Extension: multi-query scheduling (Section 7 future work)"}

	run := func(g *sim.Graph) (*sim.Metrics, error) {
		s, err := sim.New(paperCluster(), g, &sim.EPPolicy{Tick: 100 * time.Millisecond})
		if err != nil {
			return nil, err
		}
		s.MaxVirtual = 6 * time.Hour
		return s.Run()
	}

	g9, err := compileAt(sse.Queries["SSE-Q9"], "sse")
	if err != nil {
		return nil, err
	}
	gQ1, err := compileAt(tpch.Queries["Q1"], "tpch")
	if err != nil {
		return nil, err
	}
	m9, err := run(g9)
	if err != nil {
		return nil, err
	}
	mQ1, err := run(gQ1)
	if err != nil {
		return nil, err
	}

	// Fresh graphs for the shared run (Sim mutates its graph's queues).
	g9b, _ := compileAt(sse.Queries["SSE-Q9"], "sse")
	gQ1b, _ := compileAt(tpch.Queries["Q1"], "tpch")
	merged, err := sim.Merge(g9b, gQ1b)
	if err != nil {
		return nil, err
	}
	mBoth, err := run(merged)
	if err != nil {
		return nil, err
	}

	solo := m9.Elapsed + mQ1.Elapsed
	r.addf("SSE-Q9 alone:            %6.1f s", m9.Elapsed.Seconds())
	r.addf("TPC-H-Q1 alone:          %6.1f s", mQ1.Elapsed.Seconds())
	r.addf("both concurrently:       %6.1f s (serial sum %.1f s)",
		mBoth.Elapsed.Seconds(), solo.Seconds())
	r.addf("concurrent CPU util:     %5.0f%%", 100*mBoth.CPUUtilization())
	r.notef("Algorithm 1 needs no changes for multiple queries: every" +
		" segment attaches to the same per-node scheduler and cores flow" +
		" to the global bottleneck")
	return r, nil
}
