package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/sse"
)

// mqRows sizes the real-engine multi-query experiment's SSE tables:
// large enough that queries overlap for many scheduler ticks, small
// enough that the whole experiment stays in seconds.
const mqRows = 120_000

// MultiQueryEngine is the real-engine counterpart of MultiQuery: where
// the simulator predicts multi-query sharing, this experiment measures
// it — one in-process EP cluster, exchanges namespaced per query,
// cores arbitrated by the cluster-resident schedulers from one shared
// lease pool, and arrivals admitted through the bounded front end.
// It reports per-query solo latency, the concurrent makespan against
// the serial sum, and the admission picture.
func MultiQueryEngine() (*Report, error) {
	r := &Report{Title: "Extension: multi-query serving on the real engine"}

	const (
		nodes       = 4
		cores       = 4
		maxInflight = 4
		copies      = 3 // concurrent copies of each query
	)
	cat := catalog.New(nodes)
	sse.RegisterTables(cat, mqRows)
	c := engine.NewCluster(engine.Config{
		Nodes:        nodes,
		CoresPerNode: cores,
		Mode:         engine.EP,
	}, cat)
	defer c.Close()
	if err := sse.Load(c, sse.GenConfig{Rows: mqRows, Seed: 1}); err != nil {
		return nil, err
	}

	queries := sse.EvaluatedQueries

	// Solo baselines.
	solo := map[string]time.Duration{}
	soloRows := map[string]int{}
	var serial time.Duration
	for _, id := range queries {
		res, err := c.Run(sse.Queries[id])
		if err != nil {
			return nil, fmt.Errorf("solo %s: %v", id, err)
		}
		solo[id] = res.Stats.Duration
		soloRows[id] = res.NumRows()
		serial += res.Stats.Duration
	}

	// Concurrent mix through the admission front end.
	srv := server.New(c, server.Config{
		MaxInflight:  maxInflight,
		QueueTimeout: time.Minute,
	})
	type outcome struct {
		id  string
		dur time.Duration
		err error
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		outcomes  []outcome
		peakQueue int
	)
	start := time.Now()
	for rep := 0; rep < copies; rep++ {
		for _, id := range queries {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				t0 := time.Now()
				res, err := srv.Query(context.Background(), sse.Queries[id])
				o := outcome{id: id, dur: time.Since(t0), err: err}
				if err == nil && res.NumRows() != soloRows[id] {
					o.err = fmt.Errorf("%d rows, solo run returned %d",
						res.NumRows(), soloRows[id])
				}
				mu.Lock()
				outcomes = append(outcomes, o)
				_, queued := srv.Stats()
				if queued > peakQueue {
					peakQueue = queued
				}
				mu.Unlock()
			}(id)
		}
	}
	wg.Wait()
	makespan := time.Since(start)

	latSum := map[string]time.Duration{}
	for _, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("concurrent %s: %v", o.id, o.err)
		}
		latSum[o.id] += o.dur
	}

	r.addf("%-8s | %10s | %14s | slowdown", "query", "solo", "shared (mean)")
	for _, id := range queries {
		mean := latSum[id] / copies
		r.addf("%-8s | %8.0fms | %12.0fms | %5.2fx", id,
			float64(solo[id].Milliseconds()),
			float64(mean.Milliseconds()),
			float64(mean)/float64(solo[id]))
	}
	r.addf("")
	r.addf("%d queries, %d in flight: makespan %.1fs vs serial sum x%d = %.1fs (%.2fx speedup)",
		copies*len(queries), maxInflight,
		makespan.Seconds(), copies, float64(copies)*serial.Seconds(),
		float64(copies)*serial.Seconds()/makespan.Seconds())
	over := 0
	for n := 0; n <= nodes; n++ {
		over += c.OversubscribedCores(n)
	}
	r.addf("peak admission queue depth: %d; residual core overdraft: %d", peakQueue, over)
	r.notef("exchanges are keyed by (query, exchange) so dataflows never cross;" +
		" the cluster-resident schedulers move cores between queries with the" +
		" same Algorithm 1 that moves them between segments")
	return r, nil
}
