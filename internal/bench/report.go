// Package bench regenerates every figure and table of the paper's
// evaluation (Section 5). Each experiment returns a Report whose rows
// mirror the series/columns the paper plots; cmd/epbench prints them
// and bench_test.go exposes each as a testing.B benchmark.
//
// Experiment-to-substrate mapping (DESIGN.md §4): Figure 9 measures the
// real elastic iterators; Figure 8 and the cluster-scale experiments
// (Figures 10-13, Tables 4-7) run on the virtual-time simulator at the
// paper's 10×24-core scale, with plans produced by the real SQL
// frontend and the scheduling performed by the real sched package.
package bench

import (
	"fmt"
	"strings"
)

// Report is one experiment's printable result.
type Report struct {
	Title string
	Notes []string
	Rows  []string
}

func (r *Report) addf(format string, args ...any) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	for _, row := range r.Rows {
		sb.WriteString(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}
