package bench

import (
	"context"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/session"
	"repro/internal/sse"
	"repro/internal/types"
)

func BenchmarkPreparedExecute(b *testing.B) {
	cat := catalog.New(4)
	sse.RegisterTables(cat, qpsRows)
	c := engine.NewCluster(engine.Config{Nodes: 4, CoresPerNode: 2, Mode: engine.EP, FastPath: true}, cat)
	defer c.Close()
	if err := sse.Load(c, sse.GenConfig{Rows: qpsRows, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	keyRes, err := c.Run("SELECT sec_code, count(*) FROM trades GROUP BY sec_code")
	if err != nil {
		b.Fatal(err)
	}
	var secs []int64
	for _, row := range keyRes.Rows() {
		secs = append(secs, row[0].I)
	}
	sess := session.New(session.Direct{C: c})
	if _, err := sess.Prepare("lookup", "SELECT acct_id, order_price, trade_volume FROM trades WHERE sec_code = $1"); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	args := []types.Value{types.IntVal(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		args[0] = types.IntVal(secs[i%len(secs)])
		if _, err := sess.Execute(ctx, "lookup", args); err != nil {
			b.Fatal(err)
		}
	}
}
