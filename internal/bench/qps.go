package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/session"
	"repro/internal/sse"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// qpsRows sizes the point-lookup working set: small enough that every
// query is microseconds of operator work, so the experiment isolates
// the per-statement serving overhead (lex, parse, plan, dataflow
// construction) that the prepared path eliminates.
const qpsRows = 400

// qpsWindow is how long each configuration is driven; long enough to
// amortize timer noise, short enough to keep the experiment interactive.
const qpsWindow = 500 * time.Millisecond

// QPS measures the high-QPS serving stack on a cached point-lookup
// workload: the same parameterized lookup, driven two ways on identical
// data.
//
//   - parse-per-statement: plan cache disabled, serial fast path off —
//     every statement pays lex + parse + plan + parallel-dataflow setup,
//     the way an unprepared workload hits the engine.
//   - prepared: PREPARE once through a session, then EXECUTE in a loop —
//     each iteration pays parameter binding and (fast-path) execution
//     only.
//
// The ratio is the PR's acceptance criterion: >= 10x sustained QPS.
func QPS() (*Report, error) {
	r := &Report{Title: "Extension: high-QPS serving — prepared EXECUTE vs parse-per-statement"}

	const nodes = 4

	build := func(fast bool) (*engine.Cluster, error) {
		cat := catalog.New(nodes)
		sse.RegisterTables(cat, qpsRows)
		cfg := engine.Config{Nodes: nodes, CoresPerNode: 2, Mode: engine.EP, FastPath: fast}
		if !fast {
			cfg.PlanCacheSize = -1 // parse-per-statement: no plan reuse
		}
		c := engine.NewCluster(cfg, cat)
		if err := sse.Load(c, sse.GenConfig{Rows: qpsRows, Seed: 1}); err != nil {
			c.Close()
			return nil, err
		}
		return c, nil
	}

	slowC, err := build(false)
	if err != nil {
		return nil, err
	}
	defer slowC.Close()
	fastC, err := build(true)
	if err != nil {
		return nil, err
	}
	defer fastC.Close()

	// The lookup keys: every distinct sec_code in the table, cycled so
	// consecutive statements differ in their literal (the baseline could
	// not cache them even if it tried).
	keyRes, err := fastC.Run("SELECT sec_code, count(*) FROM trades GROUP BY sec_code")
	if err != nil {
		return nil, err
	}
	var secs []int64
	for _, row := range keyRes.Rows() {
		secs = append(secs, row[0].I)
	}
	if len(secs) == 0 {
		return nil, fmt.Errorf("qps: no sec_codes in fixture")
	}

	const lookup = "SELECT acct_id, order_price, trade_volume FROM trades WHERE sec_code = "

	// Prepared side: one session, one PREPARE, EXECUTE in a loop.
	sess := session.New(session.Direct{C: fastC})
	if _, err := sess.Prepare("lookup", lookup+"$1"); err != nil {
		return nil, err
	}
	ctx := context.Background()
	args := []types.Value{types.IntVal(0)}

	// One instrumented EXECUTE proves the prepared side really runs on
	// the serial fast path; the timed loops then run registry-free, the
	// shape of a serving process without the observability endpoint.
	reg := telemetry.NewRegistry(false)
	telemetry.SetDefaultRegistry(reg)
	args[0] = types.IntVal(secs[0])
	_, err = sess.Execute(ctx, "lookup", args)
	telemetry.SetDefaultRegistry(nil)
	if err != nil {
		return nil, err
	}
	fastPathOn := reg.Counter(telemetry.CtrFastPathQueries).Load() > 0

	// The two sides are driven in alternating rounds, so machine noise
	// lands on both rather than skewing whichever ran during a spike.
	slow := func(i int) error {
		_, err := slowC.Run(lookup + fmt.Sprint(secs[i%len(secs)]))
		return err
	}
	fast := func(i int) error {
		args[0] = types.IntVal(secs[i%len(secs)])
		_, err := sess.Execute(ctx, "lookup", args)
		return err
	}
	const rounds = 4
	var slowOps, fastOps int
	var slowNs, fastNs int64
	for round := 0; round < rounds; round++ {
		ops, ns, err := drive(qpsWindow/rounds, slow)
		if err != nil {
			return nil, err
		}
		slowOps += ops
		slowNs += ns
		ops, ns, err = drive(qpsWindow/rounds, fast)
		if err != nil {
			return nil, err
		}
		fastOps += ops
		fastNs += ns
	}

	slowQPS := float64(slowOps) / (float64(slowNs) / 1e9)
	fastQPS := float64(fastOps) / (float64(fastNs) / 1e9)
	ratio := fastQPS / slowQPS

	cs := fastC.PlanCacheStats()
	r.addf("workload:                point lookup on %d-row trades, %d distinct keys, %d nodes", qpsRows, len(secs), nodes)
	r.addf("parse-per-statement:     %8.0f qps  (%6.1f us/op, %d ops)", slowQPS, float64(slowNs)/float64(slowOps)/1e3, slowOps)
	r.addf("prepared EXECUTE:        %8.0f qps  (%6.1f us/op, %d ops)", fastQPS, float64(fastNs)/float64(fastOps)/1e3, fastOps)
	r.addf("speedup:                 %8.1fx sustained", ratio)
	r.addf("plan cache:              %d hits / %d misses / %d evictions", cs.Hits, cs.Misses, cs.Evictions)
	r.addf("serial fast path:        %v", map[bool]string{true: "verified (counter moved)", false: "NOT taken"}[fastPathOn])
	if ratio >= 10 {
		r.notef("acceptance: >= 10x sustained QPS over parse-per-statement — met")
	} else {
		r.notef("acceptance: >= 10x sustained QPS over parse-per-statement — NOT met")
	}
	return r, nil
}

// drive runs op back-to-back for at least window, returning the
// operation count and elapsed nanoseconds. The elapsed clock is read
// every batch, not every op, so timing overhead stays out of the
// measured path.
func drive(window time.Duration, op func(i int) error) (ops int, ns int64, err error) {
	const batch = 64
	// Warmup: fill caches, trigger lazy construction.
	for i := 0; i < batch; i++ {
		if err := op(i); err != nil {
			return 0, 0, err
		}
	}
	start := time.Now()
	for time.Since(start) < window {
		for i := 0; i < batch; i++ {
			if err := op(ops + i); err != nil {
				return 0, 0, err
			}
		}
		ops += batch
	}
	return ops, time.Since(start).Nanoseconds(), nil
}
