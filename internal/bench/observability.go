package bench

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/sse"
	"repro/internal/telemetry"
)

// obsRows sizes the observability-overhead experiment's SSE tables.
const obsRows = 100_000

// obsReps is how many timed repetitions each variant gets; the best
// (minimum) time is compared, which is robust to scheduling noise.
const obsReps = 5

// ObsOverhead measures what the observability plane costs: each
// evaluated SSE query runs plain (no instrumentation) and under
// EXPLAIN ANALYZE (span capture on, per-operator counters, gauges and
// histograms live, per-exchange traffic attribution), and the report
// compares best-of-N latencies. The cluster-wide tracing PR rides on
// the claim that instrumentation is cheap enough to leave on for any
// query worth examining — this experiment is that claim's receipt.
// Latency histograms for both variants close the report with the
// p50/p95/p99 summary lines the serving path prints.
func ObsOverhead() (*Report, error) {
	r := &Report{Title: "Extension: observability overhead (plain vs EXPLAIN ANALYZE)"}

	const nodes, cores = 4, 4
	cat := catalog.New(nodes)
	sse.RegisterTables(cat, obsRows)
	c := engine.NewCluster(engine.Config{
		Nodes: nodes, CoresPerNode: cores, Mode: engine.EP,
	}, cat)
	defer c.Close()
	if err := sse.Load(c, sse.GenConfig{Rows: obsRows, Seed: 1}); err != nil {
		return nil, err
	}

	plainHist := telemetry.NewHistogram(telemetry.LatencyBuckets)
	anHist := telemetry.NewHistogram(telemetry.LatencyBuckets)
	r.addf("%-8s %12s %12s %9s", "query", "plain", "analyzed", "overhead")
	for _, id := range sse.EvaluatedQueries {
		q := sse.Queries[id]
		if _, err := c.Run(q); err != nil { // warm caches and pools
			return nil, fmt.Errorf("%s warmup: %v", id, err)
		}
		best := func(run func() error, h *telemetry.Histogram) (time.Duration, error) {
			var min time.Duration
			for rep := 0; rep < obsReps; rep++ {
				t0 := time.Now()
				if err := run(); err != nil {
					return 0, err
				}
				d := time.Since(t0)
				h.Observe(d.Seconds())
				if min == 0 || d < min {
					min = d
				}
			}
			return min, nil
		}
		plain, err := best(func() error { _, err := c.Run(q); return err }, plainHist)
		if err != nil {
			return nil, fmt.Errorf("%s plain: %v", id, err)
		}
		analyzed, err := best(func() error { _, _, err := c.ExplainAnalyze(q); return err }, anHist)
		if err != nil {
			return nil, fmt.Errorf("%s analyzed: %v", id, err)
		}
		r.addf("%-8s %12v %12v %+8.1f%%", id,
			plain.Round(time.Microsecond), analyzed.Round(time.Microsecond),
			100*(float64(analyzed)-float64(plain))/float64(plain))
	}
	r.addf("plain    %s", plainHist.Snapshot().SummaryLine())
	r.addf("analyzed %s", anHist.Snapshot().SummaryLine())
	r.notef("best of %d runs per variant, %d rows/table, %d nodes x %d cores",
		obsReps, obsRows, nodes, cores)
	return r, nil
}
