package catalog

import (
	"testing"

	"repro/internal/types"
)

func table(name string) *Table {
	return &Table{
		Name:    name,
		Schema:  types.NewSchema(types.Col("id", types.Int64)),
		PartKey: []int{0},
		Stats:   TableStats{Rows: 100},
	}
}

func TestAddLookup(t *testing.T) {
	c := New(4)
	if err := c.Add(table("Orders")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("ORDERS") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Orders" {
		t.Fatalf("name = %q", got.Name)
	}
	if _, err := c.Lookup("missing"); err == nil {
		t.Fatal("lookup of unknown table should fail")
	}
}

func TestDuplicateRejected(t *testing.T) {
	c := New(2)
	c.MustAdd(table("t"))
	if err := c.Add(table("T")); err == nil {
		t.Fatal("case-insensitive duplicate should be rejected")
	}
}

func TestNamesSorted(t *testing.T) {
	c := New(2)
	c.MustAdd(table("zeta"))
	c.MustAdd(table("alpha"))
	names := c.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestPartCols(t *testing.T) {
	tbl := &Table{
		Name: "t",
		Schema: types.NewSchema(
			types.Col("a", types.Int64), types.Col("b", types.Int64)),
		PartKey: []int{1},
	}
	cols := tbl.PartCols()
	if len(cols) != 1 || cols[0] != "b" {
		t.Fatalf("part cols = %v", cols)
	}
}

func TestNodesFloor(t *testing.T) {
	if c := New(0); c.Nodes != 1 {
		t.Fatalf("nodes = %d, want floor of 1", c.Nodes)
	}
}
