// Package catalog holds table metadata for the cluster: schemas, hash
// partitioning, and statistics. Statistics serve two masters: the query
// optimizer (join build-side choice, exchange placement) and the
// virtual-time simulator, which needs SF-scalable cardinalities for
// cluster-scale runs that are too large to materialize (see DESIGN.md §1).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/types"
)

// ColStats carries per-column statistics used for cardinality estimation.
type ColStats struct {
	// NDV is the estimated number of distinct values.
	NDV int64
	// Min and Max bound the column's value range (numeric/date columns).
	Min, Max types.Value
}

// TableStats carries table-level statistics.
type TableStats struct {
	Rows int64
	Cols map[string]ColStats
}

// Table describes one base table.
type Table struct {
	Name   string
	Schema *types.Schema
	// PartKey lists the column indices of the hash-partitioning key. All
	// tables in the paper's setup are hash partitioned across the slave
	// nodes on their primary key (Section 5.1).
	PartKey []int
	Stats   TableStats
}

// PartCols returns the names of the partitioning columns.
func (t *Table) PartCols() []string {
	names := make([]string, len(t.PartKey))
	for i, idx := range t.PartKey {
		names[i] = t.Schema.Cols[idx].Name
	}
	return names
}

// Catalog is the master node's table registry.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	version int64
	// Nodes is the number of slave nodes data is partitioned over.
	Nodes int
}

// New returns a catalog for a cluster of n slave nodes.
func New(nodes int) *Catalog {
	if nodes < 1 {
		nodes = 1
	}
	return &Catalog{tables: make(map[string]*Table), Nodes: nodes}
}

// Add registers a table. It returns an error on duplicate names.
func (c *Catalog) Add(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	c.tables[key] = t
	c.version++
	return nil
}

// Version returns the catalog's schema version: a counter bumped on
// every mutation (table registration, explicit BumpVersion). Plan
// caches key on it, so a plan compiled against an older catalog can
// never be served after the schema moved on.
func (c *Catalog) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// BumpVersion invalidates every plan compiled against the current
// catalog state. Callers that mutate registered tables in place
// (statistics reloads, schema edits in tests) must call it.
func (c *Catalog) BumpVersion() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
}

// MustAdd is Add that panics on error, for setup code.
func (c *Catalog) MustAdd(t *Table) {
	if err := c.Add(t); err != nil {
		panic(err)
	}
}

// Lookup finds a table by case-insensitive name.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
