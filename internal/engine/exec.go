package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/elastic"
	"repro/internal/iterator"
	"repro/internal/network"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// querySeq hands out process-unique query ids. Every fabric exchange is
// keyed by (query id, exchange id), so the dataflows of concurrent
// queries on one cluster — or several clusters in one process — can
// never cross.
var querySeq atomic.Int64

// Run compiles and executes a SQL query.
func (c *Cluster) Run(query string) (*Result, error) {
	p, _, err := c.CompileCached(query)
	if err != nil {
		return nil, err
	}
	return c.runAuto(context.Background(), p, nil, query)
}

// RunContext is Run under a context: cancellation (or deadline expiry)
// routes into the query's fail-fast teardown, aborting every exchange
// so no worker stays wedged, and the call returns the context's error.
func (c *Cluster) RunContext(ctx context.Context, query string) (*Result, error) {
	p, _, err := c.CompileCached(query)
	if err != nil {
		return nil, err
	}
	return c.runAuto(ctx, p, nil, query)
}

// RunScoped compiles and executes a SQL query under the given telemetry
// scope, so callers can attach sinks before execution starts.
func (c *Cluster) RunScoped(query string, sc *telemetry.Scope) (*Result, error) {
	p, _, err := c.CompileCached(query)
	if err != nil {
		return nil, err
	}
	return c.runAuto(context.Background(), p, sc, query)
}

// queryScopeSeq numbers the auto-created query scopes of a process.
var queryScopeSeq atomic.Int64

// segInst is one segment instance: the iterator tree of a segment on
// one node, wrapped in an elastic worker pool and driven by a sender.
type segInst struct {
	seg     *plan.Segment
	node    int
	el      *elastic.Elastic
	sender  *iterator.Sender
	mergers []*iterator.Merger
	inboxes []*network.Inbox
	joins   []*iterator.HashJoin
	aggs    []*iterator.HashAgg
	hasScan bool
	done    chan struct{}
}

// runOpts places a query explicitly — the distributed execution path.
// Nil means the classic all-in-one-process placement: master segments
// on the cluster's master node, data segments on every data node, all
// instantiated locally.
type runOpts struct {
	// qid is the externally assigned, cluster-unique query id.
	qid int
	// master hosts master-resident segments and the result collector.
	master int
	// dataNodes is the (alive) subset of data nodes scanning their
	// partitions, in ascending order on every participant.
	dataNodes []int
	// local is the only node this process instantiates segments for.
	local int
}

// exec carries one query's runtime state. All measurement flows through
// the telemetry scope; ExecStats is derived from it after completion.
type exec struct {
	c   *Cluster
	p   *plan.Plan
	qid int // cluster-unique query id: the exchange namespace
	// master is the node hosting master segments and the result
	// collector; dataNodes are the nodes running data segments; local
	// restricts instantiation to one node (-1 = instantiate all, the
	// single-process cluster).
	master    int
	dataNodes []int
	local     int
	// resultExID is the result collector's exchange id, derived as one
	// past the plan's highest exchange id — unique within the query's
	// namespace, no reserved constant to collide on.
	resultExID int
	tracker    *block.Tracker
	// qmem[n] is the query's memory account on node n (a child of the
	// cluster's node budget): every stateful operator instance charges
	// its state to a sub-account of it, so per-node and per-query caps
	// compose through one hierarchy.
	qmem      []*block.Tracker
	exchanges map[int]network.FabricExchange
	consNodes  map[int][]int
	insts      []*segInst
	resultEx   network.FabricExchange
	stop       chan struct{}

	// failOnce/failErr implement fail-fast teardown: the first error
	// aborts every exchange so no sender, receiver or worker stays
	// wedged on a dataflow that will never complete.
	failOnce sync.Once
	failMu   sync.Mutex
	failErr  error

	scope     *telemetry.Scope
	memGauge  *telemetry.Gauge
	traceSink *telemetry.MemSink // retains ParallelismSample events
	startAt   time.Duration      // scope clock when execution began

	// opMemSum/opMemN accumulate the sampler's per-operator mem_bytes
	// readings for EXPLAIN ANALYZE's mean column. Written only by the
	// sampler goroutine, read after it exits.
	opMemSum map[int]float64
	opMemN   map[int]int64

	// ops assigns plan-operator ids for per-operator instrumentation.
	// Nil on the default path: no iterator wrapping, no extra counters —
	// the hot loops run exactly as without observability. Populated for
	// analyzed or span-traced queries; ids are per plan-template node, so
	// the per-node instantiations of one segment share counters and
	// aggregate cluster-wide by construction.
	ops map[plan.PhysOp]int
}

// fail records the query's first error and tears the dataflow down:
// every exchange (result collector included) is aborted, which fails
// pending reliable sends, unblocks and drains all inboxes, and lets
// every segment's workers and sender run to completion. Later errors —
// typically the "exchange aborted" cascade from the teardown itself —
// are dropped.
func (e *exec) fail(err error) {
	e.failOnce.Do(func() {
		e.failMu.Lock()
		e.failErr = err
		e.failMu.Unlock()
		e.scope.Emit(telemetry.QueryPhase{Phase: "error", Detail: err.Error()})
		for _, ex := range e.exchanges {
			ex.Abort()
		}
		if e.resultEx != nil {
			e.resultEx.Abort()
		}
	})
}

// err returns the first recorded failure.
func (e *exec) err() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

// spillErr returns the first spill I/O failure any stateful operator
// instance recorded, if any.
func (e *exec) spillErr() error {
	for _, inst := range e.insts {
		for _, j := range inst.joins {
			if err := j.SpillError(); err != nil {
				return fmt.Errorf("engine: join spill on node %d: %w", inst.node, err)
			}
		}
		for _, a := range inst.aggs {
			if err := a.SpillError(); err != nil {
				return fmt.Errorf("engine: agg spill on node %d: %w", inst.node, err)
			}
		}
	}
	return nil
}

// opMem builds the memory-governance handle of one stateful operator
// instance: a sub-account of the query's budget on the operator's
// node, the cluster spill directory, and — when the query is
// instrumented — the op.<id>.mem_bytes gauge EXPLAIN ANALYZE reads.
func (e *exec) opMem(op plan.PhysOp, kind string, node int) *iterator.MemConfig {
	m := &iterator.MemConfig{
		Acct:     e.qmem[node].Sub(kind),
		SpillDir: e.c.cfg.SpillDir,
		Scope:    e.scope,
		Node:     node,
		Op:       kind,
	}
	if e.ops != nil {
		m.Gauge = e.scope.Gauge(telemetry.OpCtr(e.ops[op], telemetry.OpMemBytes))
	}
	return m
}

// nodesOf lists the nodes a segment group is instantiated on. The
// answer must be identical on every participant of a distributed query
// (it fixes exchange instance indexing), so it derives purely from the
// exec's agreed placement, never from process-local state.
func (e *exec) nodesOf(seg *plan.Segment) []int {
	if seg.OnMaster {
		return []int{e.master}
	}
	return e.dataNodes
}

// hosts reports whether this process instantiates segment instances
// placed on the given node.
func (e *exec) hosts(node int) bool {
	return e.local < 0 || node == e.local
}

// newQueryScope creates the auto-named telemetry scope of one query.
func newQueryScope() *telemetry.Scope {
	return telemetry.NewScope(fmt.Sprintf("q%d", queryScopeSeq.Add(1)))
}

// RunPlan executes a compiled plan under the cluster's mode, with a
// fresh telemetry scope per query.
func (c *Cluster) RunPlan(p *plan.Plan) (*Result, error) {
	return c.RunPlanScoped(p, newQueryScope())
}

// RunPlanScoped executes a compiled plan under the cluster's mode,
// recording all measurements on the given scope.
func (c *Cluster) RunPlanScoped(p *plan.Plan, sc *telemetry.Scope) (*Result, error) {
	return c.runPlan(context.Background(), p, sc, "", nil)
}

// runPlan is the single execution entry point behind Run/RunScoped/
// RunContext/RunPlan/RunPlanScoped and ExplainAnalyze. sqlText (when
// known) labels the query in the process registry; az non-nil collects
// the extra per-exchange measurements EXPLAIN ANALYZE reports; ctx
// cancellation routes into the fail-fast teardown.
func (c *Cluster) runPlan(ctx context.Context, p *plan.Plan, sc *telemetry.Scope, sqlText string, az *analyzeState) (res *Result, err error) {
	return c.runPlanOpts(ctx, p, sc, sqlText, az, nil)
}

// runPlanOpts is runPlan with explicit placement — the distributed
// path, where each participating process runs it against the same plan
// under the same opts and instantiates only its local share.
func (c *Cluster) runPlanOpts(ctx context.Context, p *plan.Plan, sc *telemetry.Scope, sqlText string, az *analyzeState, opts *runOpts) (res *Result, err error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if p.NumParams > 0 {
		return nil, fmt.Errorf("engine: plan has %d unbound parameters; use PREPARE/EXECUTE or pass arguments", p.NumParams)
	}
	qrec := telemetry.DefaultRegistry().Begin(sc, sqlText)
	defer func() { telemetry.DefaultRegistry().Finish(qrec, err) }()
	qsp := sc.StartSpan("query", "query")
	defer qsp.End()

	e := &exec{
		c: c, p: p,
		tracker:   block.NewTracker(),
		exchanges: make(map[int]network.FabricExchange),
		consNodes: make(map[int][]int),
		stop:      make(chan struct{}),
		scope:     sc,
		memGauge:  sc.Gauge(telemetry.GaugeMemBytes),
		traceSink: telemetry.NewMemSink(telemetry.KindParallelismSample),
		startAt:   sc.Elapsed(),
	}
	if opts != nil {
		e.qid, e.master, e.dataNodes, e.local = opts.qid, opts.master, opts.dataNodes, opts.local
	} else {
		e.qid, e.master, e.local = c.NextQueryID(), c.master(), -1
		e.dataNodes = make([]int, c.cfg.Nodes)
		for i := range e.dataNodes {
			e.dataNodes[i] = i
		}
	}
	sc.Attach(e.traceSink)
	if az != nil {
		az.attach(e)
	}

	// Memory admission: open the query's per-node accounts, prepaying
	// the estimated working memory (capped at half the node budget so a
	// single large query is always admittable — it completes by
	// spilling). With no node budget configured the accounts still
	// track, so stats and observability work unconstrained.
	estSlave, estMaster := c.estimateQueryMemory(p)
	for i := 0; i <= c.cfg.Nodes; i++ {
		est := estSlave
		if i == c.master() {
			est = estMaster
		}
		var prepaid int64
		if c.cfg.MemoryPerNode > 0 {
			prepaid = est
			if half := c.cfg.MemoryPerNode / 2; prepaid > half {
				prepaid = half
			}
		}
		qt, qerr := c.memBudgets[i].SubReserve(
			fmt.Sprintf("q%d", e.qid), prepaid, c.cfg.MemoryPerQuery)
		if qerr != nil {
			for _, t := range e.qmem {
				t.Drop()
			}
			return nil, fmt.Errorf("%w: node %d: %v", ErrMemoryBudget, i, qerr)
		}
		e.qmem = append(e.qmem, qt)
	}
	// Drop covers every exit path: refunds the prepaid reservation and
	// any charge a failed query's operators never freed.
	defer func() {
		for _, t := range e.qmem {
			t.Drop()
		}
	}()
	// Per-operator instrumentation is keyed off the same switch that
	// turns on spans: analyzed queries and span-traced queries get the
	// iterator.Instrumented wrappers, everything else runs the bare
	// iterator chain.
	if az != nil || sc.SpansEnabled() {
		e.ops = make(map[plan.PhysOp]int)
		for _, s := range p.Segments {
			plan.Walk(s.Root, func(op plan.PhysOp) {
				if _, ok := e.ops[op]; !ok {
					e.ops[op] = len(e.ops)
				}
			})
		}
		e.opMemSum = make(map[int]float64)
		e.opMemN = make(map[int]int64)
	}
	sc.Emit(telemetry.QueryPhase{Phase: "start", Detail: c.cfg.Mode.String()})
	wireSp := sc.StartSpan("wire", "query")

	segByID := make(map[int]*plan.Segment)
	for _, s := range p.Segments {
		segByID[s.ID] = s
	}

	// Wire exchanges. ME mode stages entire intermediate results in
	// unbounded inboxes (the materialization of Section 5.4).
	buf := c.cfg.ExchangeBuffer
	if c.cfg.Mode == ME {
		buf = 0
	}
	maxExID := 0
	for _, ex := range p.Exchanges {
		prod, okP := segByID[ex.Producer]
		cons, okC := segByID[ex.Consumer]
		if !okP || !okC {
			return nil, fmt.Errorf("engine: exchange %d is dangling", ex.ID)
		}
		if ex.ID > maxExID {
			maxExID = ex.ID
		}
		prodNodes := e.nodesOf(prod)
		consNodes := e.nodesOf(cons)
		e.consNodes[ex.ID] = consNodes
		e.exchanges[ex.ID] = c.fabric.NewExchange(e.qid, ex.ID, len(prodNodes), consNodes,
			ex.Sch, buf, e.tracker, e.scope)
	}

	// The result collector: final segment gathers to the master. Its
	// exchange id is derived — one past the plan's highest — so it is
	// unique within this query's (qid-keyed) namespace with no reserved
	// constant that concurrent queries could collide on.
	e.resultExID = maxExID + 1
	finalNodes := e.nodesOf(p.Final)
	e.resultEx = c.fabric.NewExchange(e.qid, e.resultExID, len(finalNodes),
		[]int{e.master}, p.Final.Root.Schema(), buf, e.tracker, e.scope)

	// When the query is fully torn down (all senders, readers and
	// samplers joined), drop its exchange state from the transport so a
	// long-lived serving cluster does not accrete per-query registries.
	defer func() {
		for _, ex := range e.exchanges {
			ex.Release()
		}
		e.resultEx.Release()
	}()

	// Instantiate the segments this process hosts on their nodes (all of
	// them for a single-process cluster, the local node's share in
	// distributed mode).
	for _, seg := range p.Segments {
		for _, node := range e.nodesOf(seg) {
			if !e.hosts(node) {
				continue
			}
			inst, err := e.instantiate(seg, node)
			if err != nil {
				return nil, err
			}
			e.insts = append(e.insts, inst)
		}
	}
	wireSp.End()

	// Distributed queries enroll in the inflight table only now that the
	// dataflow is fully wired: NodeLost tears execs down concurrently,
	// and it must never observe a half-built one. A death notification
	// that raced the wiring is caught here by the lost list instead.
	if opts != nil && c.dist != nil {
		if rerr := c.dist.register(e); rerr != nil {
			e.fail(rerr)
			for _, inst := range e.insts {
				inst.el.Close()
			}
			close(e.stop)
			return nil, rerr
		}
		defer c.dist.unregister(e.qid)
	}
	execSp := sc.StartSpan("execute", "query")

	// Route caller cancellation into the fail-fast teardown: aborting
	// the exchanges unwedges every worker, and the query returns the
	// context's error. The watcher exits with the query (e.stop closes
	// on every post-instantiation path).
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				e.fail(ctx.Err())
			case <-e.stop:
			}
		}()
	}

	// Result reader drains the collector concurrently so bounded
	// buffers never stall the final senders. Only the master-hosting
	// process has the collector inbox; participants of a distributed
	// query stream their final blocks to the coordinator instead.
	var resBlocks []*block.Block
	resDone := make(chan struct{})
	if e.hosts(e.master) {
		go func() {
			defer close(resDone)
			in := e.resultEx.Inbox(0)
			for {
				b, st := in.Recv(nil)
				if st != iterator.RecvOK {
					return
				}
				resBlocks = append(resBlocks, b)
			}
		}()
	} else {
		close(resDone)
	}

	// Memory/trace sampler.
	samplerDone := make(chan struct{})
	go e.sampler(samplerDone)

	// Recovery watchdog: with faults in play, injected worker crashes
	// can empty a pool mid-query; the watchdog re-expands dead pools on
	// the surviving elastic path so the query degrades instead of
	// hanging.
	var watchdogDone chan struct{}
	if c.faultInj.Enabled() {
		watchdogDone = make(chan struct{})
		go e.watchdog(watchdogDone)
	}

	// Execute under the selected mode.
	switch c.cfg.Mode {
	case ME:
		err = e.runMaterialized()
	default:
		err = e.runPipelined()
	}
	if err == nil {
		err = e.err()
	}
	if err == nil {
		// A half-written spill partition would silently drop rows; a
		// spill I/O failure therefore fails the query rather than
		// returning a plausible-but-wrong result.
		err = e.spillErr()
	}
	close(e.stop)
	<-samplerDone
	if watchdogDone != nil {
		<-watchdogDone
	}
	if err != nil {
		// The result reader unblocks because fail() abandoned the
		// collector's inboxes.
		e.fail(err)
		<-resDone
		execSp.End()
		if opts != nil && c.dist != nil {
			// Give the failure detector its grace to upgrade a transport
			// symptom into the typed NodeLostError verdict.
			err = e.resolveDistError(err)
		}
		return nil, err
	}
	<-resDone
	execSp.End()

	// Final peak estimate: the exchange tracker and the per-node query
	// accounts each record their own high-water marks, covering queries
	// shorter than one sampling interval.
	finalMem := e.tracker.Peak()
	for _, t := range e.qmem {
		finalMem += t.Peak()
	}
	e.memGauge.Set(finalMem) // raises the gauge peak if exceeded
	e.scope.Emit(telemetry.QueryPhase{Phase: "end"})
	if az != nil {
		// Analyzed distributed queries first gather the participants'
		// shipped scope snapshots, so the analysis below reads the merged
		// cluster-wide counters and keeps each node's share for per-node
		// rendering and skew.
		if opts != nil && c.dist != nil {
			e.gatherDistStats(az)
		}
		az.finish(e)
		qrec.SetNodeBreakdown(az.nodeBreakdowns())
	}

	res = &Result{
		Names:  p.OutputNames,
		Schema: p.Final.Root.Schema(),
		Blocks: resBlocks,
		Stats:  e.stats(),
		Scope:  e.scope,
	}
	qrec.SetRows(int64(res.NumRows()))
	return res, nil
}

// stats derives the ExecStats view from the query's telemetry scope.
func (e *exec) stats() ExecStats {
	var trace []TraceSample
	for _, ev := range e.traceSink.Events() {
		trace = append(trace, TraceSample{
			At:          ev.At - e.startAt,
			Parallelism: ev.Rec.(telemetry.ParallelismSample).Parallelism,
		})
	}
	return ExecStats{
		Duration:        e.scope.Elapsed() - e.startAt,
		PeakMemoryBytes: e.memGauge.Peak(),
		NetworkBytes:    e.scope.Counter(telemetry.CtrNetBytes).Load(),
		SchedOverhead:   time.Duration(e.scope.Counter(telemetry.CtrSchedOverheadNs).Load()),
		Trace:           trace,
	}
}

// instantiate builds one segment instance on a node.
func (e *exec) instantiate(seg *plan.Segment, node int) (*segInst, error) {
	inst := &segInst{seg: seg, node: node, done: make(chan struct{})}
	root, err := e.buildOp(seg.Root, node, inst)
	if err != nil {
		return nil, err
	}
	maxW := 0
	if seg.OrderPreserving {
		maxW = 1 // ordered emission requires a single worker
	}
	lease := e.c.leases[node]
	inst.el = elastic.New(root, elastic.Config{
		BufferCap:       64,
		OrderPreserving: seg.OrderPreserving,
		MaxWorkers:      maxW,
		Scope:           e.scope,
		Name:            fmt.Sprintf("S%d", seg.ID),
		Node:            node,
		Faults:          e.c.faultInj,
		// Every exiting worker (drain, shrink or crash) returns its core
		// slot to the node's shared pool.
		OnWorkerExit: lease.Release,
	})

	// Output: the segment's exchange, or the result collector.
	var outbox iterator.Outbox
	var part iterator.PartitionFn
	sch := seg.Root.Schema()
	if seg.Out != nil {
		ex := e.exchanges[seg.Out.Exchange]
		outbox = ex.Outbox(node)
		if seg.Out.PartKeys != nil {
			part = iterator.HashPartitioner(seg.Out.PartKeys)
		} else {
			part = iterator.GatherPartitioner()
		}
	} else {
		outbox = e.resultEx.Outbox(node)
		part = iterator.GatherPartitioner()
	}
	inst.sender = iterator.NewSender(inst.el, sch, outbox, part)
	inst.sender.SetBlockSize(e.c.cfg.BlockSize)
	return inst, nil
}

// buildOp lowers a physical operator template into iterators on a
// node, wrapping each operator in per-operator accounting when the
// query is analyzed or span-traced (e.ops non-nil). The wrapper writes
// the op.<id>.* counters EXPLAIN ANALYZE reads, so the annotated plan
// and the telemetry stream cannot disagree.
func (e *exec) buildOp(op plan.PhysOp, node int, inst *segInst) (iterator.Iterator, error) {
	it, err := e.buildOpInner(op, node, inst)
	if err != nil || e.ops == nil {
		return it, err
	}
	return iterator.Instrument(it, e.scope, e.ops[op], plan.OpLabel(op),
		fmt.Sprintf("S%d", inst.seg.ID), node), nil
}

func (e *exec) buildOpInner(op plan.PhysOp, node int, inst *segInst) (iterator.Iterator, error) {
	switch n := op.(type) {
	case *plan.PScan:
		part, err := e.c.store(node).Partition(n.Table.Name)
		if err != nil {
			return nil, err
		}
		inst.hasScan = true
		var it iterator.Iterator = iterator.NewScanWithSchema(part, n.Sch)
		if n.Pred != nil {
			f := iterator.NewFilter(it, n.Sch, n.Pred)
			f.RowExec = e.c.cfg.RowExec
			it = f
		}
		return it, nil

	case *plan.PMerger:
		consNodes := e.consNodes[n.Exchange]
		instIdx := -1
		for i, cn := range consNodes {
			if cn == node {
				instIdx = i
			}
		}
		if instIdx < 0 {
			return nil, fmt.Errorf("engine: node %d is not a consumer of exchange %d", node, n.Exchange)
		}
		inbox := e.exchanges[n.Exchange].Inbox(instIdx)
		m := iterator.NewMerger(inbox, n.Sch)
		inst.mergers = append(inst.mergers, m)
		inst.inboxes = append(inst.inboxes, inbox)
		return m, nil

	case *plan.PFilter:
		child, err := e.buildOp(n.Child, node, inst)
		if err != nil {
			return nil, err
		}
		f := iterator.NewFilter(child, n.Child.Schema(), n.Pred)
		f.RowExec = e.c.cfg.RowExec
		return f, nil

	case *plan.PProject:
		child, err := e.buildOp(n.Child, node, inst)
		if err != nil {
			return nil, err
		}
		pr := iterator.NewProject(child, n.Child.Schema(), n.Sch, n.Exprs)
		pr.RowExec = e.c.cfg.RowExec
		return pr, nil

	case *plan.PHashJoin:
		build, err := e.buildOp(n.Build, node, inst)
		if err != nil {
			return nil, err
		}
		probe, err := e.buildOp(n.Probe, node, inst)
		if err != nil {
			return nil, err
		}
		hj := iterator.NewHashJoin(build, probe, n.Build.Schema(), n.Probe.Schema(),
			n.BuildKeys, n.ProbeKeys)
		hj.RowExec = e.c.cfg.RowExec
		hj.Mem = e.opMem(n, "hashjoin", node)
		inst.joins = append(inst.joins, hj)
		return hj, nil

	case *plan.PHashAgg:
		child, err := e.buildOp(n.Child, node, inst)
		if err != nil {
			return nil, err
		}
		ha := iterator.NewHashAgg(child, n.Child.Schema(), n.Keys, n.KeyNames, n.Specs, n.Algo)
		ha.RowExec = e.c.cfg.RowExec
		ha.Mem = e.opMem(n, "hashagg", node)
		inst.aggs = append(inst.aggs, ha)
		return ha, nil

	case *plan.PSort:
		child, err := e.buildOp(n.Child, node, inst)
		if err != nil {
			return nil, err
		}
		so := iterator.NewSort(child, n.Child.Schema(), n.Keys)
		so.Mem = e.opMem(n, "sort", node)
		return so, nil

	case *plan.PTopN:
		child, err := e.buildOp(n.Child, node, inst)
		if err != nil {
			return nil, err
		}
		return iterator.NewTopN(child, n.Child.Schema(), n.Keys, int(n.N)), nil

	case *plan.PLimit:
		child, err := e.buildOp(n.Child, node, inst)
		if err != nil {
			return nil, err
		}
		return iterator.NewLimit(child, n.Child.Schema(), n.N), nil
	}
	return nil, fmt.Errorf("engine: cannot instantiate %T", op)
}

// startInst launches a segment instance with the given parallelism and
// its sender driver.
func (e *exec) startInst(inst *segInst, parallelism int) {
	// Engine segments are single-stage (blocking operators buffer
	// internally); the stage-entry event aligns the engine's stream
	// with the simulator's per-stage events.
	e.scope.Emit(telemetry.SegmentStageChange{
		Node: inst.node, Segment: fmt.Sprintf("S%d", inst.seg.ID),
		Stage: 0, StageName: "run",
	})
	for i := 0; i < parallelism; i++ {
		e.expand(inst, true)
	}
	// One span covers the instance's whole lifetime: first worker start
	// to sender drain. Started here (not in the goroutine) so its begin
	// timestamp orders before any worker span of the segment.
	segSp := e.scope.StartSpan("segment", "segment").
		WithNode(inst.node).WithSegment(fmt.Sprintf("S%d", inst.seg.ID))
	go func() {
		defer close(inst.done)
		defer segSp.End()
		ctx := &iterator.Ctx{Term: &iterator.TermFlag{}}
		if err := inst.sender.Run(ctx); err != nil {
			e.fail(fmt.Errorf("segment S%d on node %d: %w", inst.seg.ID, inst.node, err))
		}
		inst.el.Close()
	}()
}

// maxRecoveryExpands bounds watchdog re-expansions per query, so a
// pathological crash schedule cannot spin the pool forever.
const maxRecoveryExpands = 256

// watchdog polls for dead worker pools (every worker crashed before
// end-of-flow) and re-expands them through the ordinary elastic expand
// path — graceful degradation onto the surviving workers instead of a
// wedged query. Only started when the cluster's fault injector is
// enabled.
func (e *exec) watchdog(done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	expands := 0
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
		}
		for _, inst := range e.insts {
			if !inst.el.Dead() {
				continue
			}
			if expands >= maxRecoveryExpands {
				e.fail(fmt.Errorf("engine: recovery budget exhausted after %d re-expansions", expands))
				return
			}
			if e.expand(inst, true) {
				expands++
				e.scope.Counter(telemetry.CtrRecoverExpands).Inc()
				e.scope.Emit(telemetry.Recovery{
					Node: inst.node, Segment: fmt.Sprintf("S%d", inst.seg.ID),
					Action: "re-expand", Workers: inst.el.Parallelism(),
				})
			}
		}
	}
}

// expand adds one worker to an instance, leasing a core slot from the
// node's cluster-level pool (shared across all concurrent queries).
//
// must distinguishes mandatory workers — the fixed parallelism SP/ME
// start with, a segment's initial worker, watchdog recovery — from the
// EP scheduler's elective expansions. When the node is fully booked, a
// mandatory worker still starts on the least-loaded core with the
// overdraft accounted (a dataflow with a zero-worker segment would
// never finish), while an elective expansion is refused so scheduled
// parallelism never exceeds the per-node core budget.
func (e *exec) expand(inst *segInst, must bool) bool {
	if !must && e.c.memPressureHigh(inst.node) {
		// Above the memory watermark the node refuses to widen pools:
		// more workers mean more parked state and private tables, the
		// opposite of what a node near its budget needs.
		e.scope.Counter(telemetry.CtrMemRefusedExpands).Inc()
		return false
	}
	lease := e.c.leases[inst.node]
	core, ok := lease.Acquire()
	if !ok {
		if !must && inst.el.Parallelism() > 0 {
			return false
		}
		core = lease.AcquireOversub()
	}
	socket := 0
	if e.c.cfg.Sockets > 1 {
		socket = core * e.c.cfg.Sockets / e.c.cfg.CoresPerNode
	}
	if inst.el.Expand(core, socket) < 0 {
		lease.Release(core)
		return false
	}
	return true
}

// runPipelined starts every segment at once (EP and SP).
func (e *exec) runPipelined() error {
	initial := 1
	if e.c.cfg.Mode == SP {
		initial = e.c.cfg.FixedParallelism
	} else if e.c.cfg.FixedParallelism > 1 {
		initial = e.c.cfg.FixedParallelism
	}
	for _, inst := range e.insts {
		e.startInst(inst, initial)
	}

	if e.c.cfg.Mode == EP {
		adapters := make([]*segAdapter, 0, len(e.insts))
		for _, inst := range e.insts {
			adapters = append(adapters, newSegAdapter(e, inst))
		}
		e.c.attachEP(e, adapters)
		defer e.c.detachEP(e, adapters)
	}
	for _, inst := range e.insts {
		<-inst.done
	}
	return nil
}

// runMaterialized executes segments stage-at-a-time in topological
// order: a consumer starts only after all its producers finished, with
// the full intermediate result staged in the exchange inbox.
func (e *exec) runMaterialized() error {
	order, err := e.topoOrder()
	if err != nil {
		return err
	}
	instsBySeg := make(map[int][]*segInst)
	for _, inst := range e.insts {
		instsBySeg[inst.seg.ID] = append(instsBySeg[inst.seg.ID], inst)
	}
	for _, segID := range order {
		for _, inst := range instsBySeg[segID] {
			e.startInst(inst, e.c.cfg.FixedParallelism)
		}
		for _, inst := range instsBySeg[segID] {
			<-inst.done
		}
	}
	return nil
}

// topoOrder sorts segment ids producers-first.
func (e *exec) topoOrder() ([]int, error) {
	indeg := make(map[int]int)
	succ := make(map[int][]int)
	for _, s := range e.p.Segments {
		indeg[s.ID] += 0
	}
	for _, ex := range e.p.Exchanges {
		succ[ex.Producer] = append(succ[ex.Producer], ex.Consumer)
		indeg[ex.Consumer]++
	}
	var queue, order []int
	for _, s := range e.p.Segments {
		if indeg[s.ID] == 0 {
			queue = append(queue, s.ID)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(e.p.Segments) {
		return nil, fmt.Errorf("engine: cyclic segment graph")
	}
	return order, nil
}

// sampler records the materialized-memory gauge and the parallelism
// trace on the query's telemetry scope.
func (e *exec) sampler(done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
		}
		mem := e.tracker.Current()
		for _, t := range e.qmem {
			mem += t.Current()
		}
		e.memGauge.Set(mem)
		if e.ops != nil {
			// Per-operator mem readings feed EXPLAIN ANALYZE's mean column.
			for _, id := range e.ops {
				g := e.scope.Gauge(telemetry.OpCtr(id, telemetry.OpMemBytes))
				if v := g.Load(); v > 0 || e.opMemN[id] > 0 {
					e.opMemSum[id] += float64(v)
					e.opMemN[id]++
				}
			}
		}
		sample := telemetry.ParallelismSample{Parallelism: make(map[string]int)}
		for _, inst := range e.insts {
			if inst.node == 0 || inst.seg.OnMaster {
				sample.Parallelism[fmt.Sprintf("S%d", inst.seg.ID)] = inst.el.Parallelism()
			}
		}
		e.scope.Emit(sample)
	}
}
