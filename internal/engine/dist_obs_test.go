package engine

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/telemetry"
)

// runDistAnalyzed fans one analyzed query out over all clusters:
// participants run RunParticipantStats and deliver their snapshots to
// the coordinator (as the claims-node control plane does over /stats),
// while the coordinator runs RunCoordinatedAnalyze.
func runDistAnalyzed(t *testing.T, clusters []*Cluster, coord int, sql string) (*Result, *Analysis) {
	t.Helper()
	dataNodes := make([]int, len(clusters))
	for i := range dataNodes {
		dataNodes[i] = i
	}
	spec := ExecSpec{
		QID: clusters[coord].NextQueryID(), SQL: sql,
		Coordinator: coord, DataNodes: dataNodes,
		Analyze: true, TraceID: "trace-test",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(clusters))
	for i, c := range clusters {
		if i == coord {
			continue
		}
		wg.Add(1)
		go func(c *Cluster) {
			defer wg.Done()
			snap, err := c.RunParticipantStats(context.Background(), spec)
			if err != nil {
				errs <- err
				return
			}
			if !clusters[coord].DeliverStats(spec.QID, snap) {
				t.Errorf("node %d: snapshot delivery refused", snap.Node)
			}
		}(c)
	}
	res, an, err := clusters[coord].RunCoordinatedAnalyze(context.Background(), spec, nil)
	wg.Wait()
	close(errs)
	for perr := range errs {
		t.Fatalf("participant: %v", perr)
	}
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return res, an
}

// TestDistAnalyzeMergesPerNodeStats is the serialize→merge round-trip
// contract: an analyzed distributed query's merged coordinator counters
// must equal the sum of the per-node scope snapshots, and both must
// match the single-process reference fingerprints for the same
// deterministic dataset.
func TestDistAnalyzeMergesPerNodeStats(t *testing.T) {
	const nNodes = 3
	cfg := Config{CoresPerNode: 2, BlockSize: 2048, ExchangeBuffer: 8}
	var clusters []*Cluster
	for i := 0; i < nNodes; i++ {
		clusters = append(clusters, buildDistCluster(t, i, nNodes, cfg))
	}
	defer func() {
		for _, c := range clusters {
			c.Close()
		}
	}()
	meshDist(clusters)

	refC := buildDistReference(t, nNodes)
	defer refC.Close()

	sql := `SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id`
	refRes, refAn, err := refC.ExplainAnalyze(sql)
	if err != nil {
		t.Fatalf("reference analyze: %v", err)
	}

	res, an := runDistAnalyzed(t, clusters, 0, sql)
	if got, want := sortedRows(res), sortedRows(refRes); !equalStrings(got, want) {
		t.Fatalf("analyzed distributed result diverges: %d rows vs %d", len(got), len(want))
	}

	perNode := an.PerNode()
	if len(perNode) != nNodes {
		nodes := make([]int, 0, len(perNode))
		for _, s := range perNode {
			nodes = append(nodes, s.Node)
		}
		t.Fatalf("per-node snapshots from %v, want all %d nodes", nodes, nNodes)
	}
	for _, snap := range perNode[1:] {
		if snap.TraceID != "trace-test" {
			t.Fatalf("node %d snapshot trace id %q, want %q", snap.Node, snap.TraceID, "trace-test")
		}
	}

	// Merged coordinator counters == sum of per-node snapshots == the
	// single-process fingerprint, for every instrumented operator.
	for _, seg := range an.Plan.Segments {
		plan.Walk(seg.Root, func(op plan.PhysOp) {
			id, ok := an.OpID(op)
			if !ok {
				return
			}
			name := telemetry.OpCtr(id, telemetry.OpRows)
			merged := an.Scope.Counter(name).Load()
			var sum int64
			for _, snap := range perNode {
				sum += snap.Counter(name)
			}
			if merged != sum {
				t.Errorf("op %d: merged rows %d != per-node sum %d", id, merged, sum)
			}
			// Plan compilation is deterministic, so op ids agree between the
			// reference plan and the distributed one; compare fingerprints by
			// id through each run's scope (the reference Analysis keys its
			// op map by its own plan's node pointers).
			refRows := refAn.Scope.Counter(name).Load()
			mRows, _, _ := an.OpStats(op)
			if mRows != refRows {
				t.Errorf("op %d: distributed rows %d != single-process %d", id, mRows, refRows)
			}
			// Every scanning node contributed: the dataset hashes onto all
			// three partitions, so per-node scan rows must each be non-zero
			// and sum to the fingerprint.
			if _, isScan := op.(*plan.PScan); isScan {
				for _, snap := range perNode {
					rows, _, _, ok := an.NodeOpStats(op, snap.Node)
					if !ok || rows == 0 {
						t.Errorf("op %d: node %d reported no scan rows (ok=%v)", id, snap.Node, ok)
					}
				}
			}
		})
	}

	// Cross-node traffic attribution: the network counter merged across
	// nodes equals the sum of per-node shares.
	var netSum int64
	for _, snap := range perNode {
		netSum += snap.Counter(telemetry.CtrNetBytes)
	}
	if merged := an.Scope.Counter(telemetry.CtrNetBytes).Load(); merged != netSum {
		t.Errorf("merged net.bytes %d != per-node sum %d", merged, netSum)
	}

	// The rendered analysis carries the per-node section the cluster
	// observability plane exists for.
	rendered := an.Render()
	if !strings.Contains(rendered, "per-node:") {
		t.Fatalf("render missing per-node section:\n%s", rendered)
	}
	for _, want := range []string{"node0 rows=", "node1 rows=", "node2 rows="} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("render missing %q:\n%s", want, rendered)
		}
	}

	for i, c := range clusters {
		if n := c.OpenExchanges(); n != 0 {
			t.Fatalf("cluster %d: %d exchange registrations leaked", i, n)
		}
	}
}

// TestDistAnalyzeSpansCoverAllNodes asserts the coordinator's captured
// span stream — after remote replay — contains spans attributed to
// every participant, so one Chrome trace renders the whole cluster.
func TestDistAnalyzeSpansCoverAllNodes(t *testing.T) {
	const nNodes = 3
	cfg := Config{CoresPerNode: 2, BlockSize: 2048, ExchangeBuffer: 8}
	var clusters []*Cluster
	for i := 0; i < nNodes; i++ {
		clusters = append(clusters, buildDistCluster(t, i, nNodes, cfg))
	}
	defer func() {
		for _, c := range clusters {
			c.Close()
		}
	}()
	meshDist(clusters)

	// Capture the coordinator's span stream like the query registry does.
	sc := telemetry.NewScope("dist-obs")
	sc.EnableSpans()
	sink := telemetry.NewMemSink(telemetry.KindSpan)
	sc.Attach(sink)

	dataNodes := []int{0, 1, 2}
	spec := ExecSpec{
		QID: clusters[0].NextQueryID(),
		SQL: `SELECT count(*) FROM trades`,
		Coordinator: 0, DataNodes: dataNodes, Analyze: true,
	}
	var wg sync.WaitGroup
	for i := 1; i < nNodes; i++ {
		wg.Add(1)
		go func(c *Cluster) {
			defer wg.Done()
			snap, err := c.RunParticipantStats(context.Background(), spec)
			if err != nil {
				t.Errorf("participant: %v", err)
				return
			}
			clusters[0].DeliverStats(spec.QID, snap)
		}(clusters[i])
	}
	_, _, err := clusters[0].RunCoordinatedAnalyze(context.Background(), spec, sc)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	nodesSeen := map[int]bool{}
	for _, ev := range sink.Events() {
		se := ev.Rec.(telemetry.SpanEnd)
		if se.Node >= 0 {
			nodesSeen[se.Node] = true
		}
		if se.Start < 0 {
			t.Fatalf("span %q has negative start %v", se.Name, se.Start)
		}
	}
	for n := 0; n < nNodes; n++ {
		if !nodesSeen[n] {
			t.Fatalf("no spans attributed to node %d (saw %v)", n, nodesSeen)
		}
	}
}
