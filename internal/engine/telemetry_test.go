package engine

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// TestExecStatsDerivedFromScope runs a distributed aggregation under a
// caller-provided scope and checks ExecStats is a faithful view of the
// scope's instruments and event stream — no independent bookkeeping.
func TestExecStatsDerivedFromScope(t *testing.T) {
	c, _ := buildTestCluster(t, EP, 3)
	scope := telemetry.NewScope("q-test")
	mem := telemetry.NewMemSink()
	scope.Attach(mem)
	res, err := c.RunScoped(
		"SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id", scope)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scope != scope {
		t.Fatal("Result.Scope is not the scope the query ran under")
	}
	st := res.Stats
	if got := scope.Counter(telemetry.CtrNetBytes).Load(); st.NetworkBytes != got {
		t.Errorf("Stats.NetworkBytes = %d, scope counter = %d", st.NetworkBytes, got)
	}
	if st.NetworkBytes == 0 {
		t.Fatal("two-phase agg across 3 nodes must move bytes over the NIC")
	}
	if got := scope.Gauge(telemetry.GaugeMemBytes).Peak(); st.PeakMemoryBytes != got {
		t.Errorf("Stats.PeakMemoryBytes = %d, gauge peak = %d", st.PeakMemoryBytes, got)
	}
	if got := time.Duration(scope.Counter(telemetry.CtrSchedOverheadNs).Load()); st.SchedOverhead != got {
		t.Errorf("Stats.SchedOverhead = %v, scope counter = %v", st.SchedOverhead, got)
	}

	// Every byte in the counter is accounted by BlockSent events, and
	// every block crossed a node boundary.
	var evBytes int64
	for _, ev := range mem.OfKind(telemetry.KindBlockSent) {
		bs := ev.Rec.(telemetry.BlockSent)
		if bs.From == bs.To {
			t.Errorf("BlockSent within node %d", bs.From)
		}
		evBytes += int64(bs.Bytes)
	}
	if evBytes != st.NetworkBytes {
		t.Errorf("BlockSent bytes sum = %d, Stats.NetworkBytes = %d", evBytes, st.NetworkBytes)
	}
	if got := int64(len(mem.OfKind(telemetry.KindBlockSent))); got != scope.Counter(telemetry.CtrNetBlocks).Load() {
		t.Errorf("BlockSent events = %d, net.blocks counter = %d",
			got, scope.Counter(telemetry.CtrNetBlocks).Load())
	}

	// The parallelism trace is the ParallelismSample stream.
	if got := len(mem.OfKind(telemetry.KindParallelismSample)); len(st.Trace) != got {
		t.Errorf("len(Stats.Trace) = %d, sample events = %d", len(st.Trace), got)
	}

	// The query lifecycle is bracketed by QueryPhase start/end.
	phases := mem.OfKind(telemetry.KindQueryPhase)
	if len(phases) != 2 {
		t.Fatalf("QueryPhase events = %d, want start+end", len(phases))
	}
	if p := phases[0].Rec.(telemetry.QueryPhase).Phase; p != "start" {
		t.Errorf("first phase = %q", p)
	}
	if p := phases[1].Rec.(telemetry.QueryPhase).Phase; p != "end" {
		t.Errorf("last phase = %q", p)
	}
}

// TestInProcAndTCPReportSameNetworkTraffic runs the same query on the
// in-process and the TCP fabric and checks the shared telemetry shim
// makes both report identical cross-node traffic: the same tuples
// cross the same node boundaries (block boundaries, and hence header
// bytes, may differ with worker timing, so tuples are the invariant).
func TestInProcAndTCPReportSameNetworkTraffic(t *testing.T) {
	const q = "SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id"

	crossTuples := func(c *Cluster) (int64, int64) {
		t.Helper()
		scope := telemetry.NewScope("q-net")
		mem := telemetry.NewMemSink(telemetry.KindBlockSent)
		scope.Attach(mem)
		res, err := c.RunScoped(q, scope)
		if err != nil {
			t.Fatal(err)
		}
		var tuples int64
		for _, ev := range mem.Events() {
			tuples += int64(ev.Rec.(telemetry.BlockSent).Tuples)
		}
		return tuples, res.Stats.NetworkBytes
	}

	cIn, _ := buildTestCluster(t, SP, 2)
	inTuples, inBytes := crossTuples(cIn)

	cTCP := buildTestClusterTCP(t, SP, 2)
	defer cTCP.Close()
	tcpTuples, tcpBytes := crossTuples(cTCP)

	if inTuples == 0 || tcpTuples == 0 {
		t.Fatalf("repartitioned agg across 2 nodes must move tuples (inproc=%d tcp=%d)",
			inTuples, tcpTuples)
	}
	if inBytes == 0 || tcpBytes == 0 {
		t.Fatalf("net bytes not accounted (inproc=%d tcp=%d)", inBytes, tcpBytes)
	}
	if inTuples != tcpTuples {
		t.Errorf("in-proc shipped %d cross-node tuples, TCP shipped %d", inTuples, tcpTuples)
	}
}

// buildTestClusterTCP is buildTestCluster over real loopback sockets:
// same schema, same seed, same data.
func buildTestClusterTCP(t *testing.T, mode Mode, nodes int) *Cluster {
	t.Helper()
	cat := catalog.New(nodes)
	trades := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("trade_date", types.Date),
		types.Col("trade_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "trades", Schema: trades, PartKey: []int{1}})
	secs := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("entry_date", types.Date),
		types.Col("entry_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "securities", Schema: secs, PartKey: []int{0}})
	c, err := NewClusterTCP(Config{
		Nodes: nodes, CoresPerNode: 2, Mode: mode,
		BlockSize: 2048, SchedTick: 5e6, ExchangeBuffer: 8,
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	day := types.MustParseDate("2010-10-30")
	tl, _ := c.NewTableLoader("trades")
	for i := 0; i < 8000; i++ {
		r := tl.Row()
		types.PutValue(r, trades, 0, types.IntVal(int64(rng.Intn(500))))
		types.PutValue(r, trades, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, trades, 2, types.DateVal(day-int64(rng.Intn(5))))
		types.PutValue(r, trades, 3, types.FloatVal(float64(rng.Intn(1000))))
		tl.Add()
	}
	tl.Close()
	sl, _ := c.NewTableLoader("securities")
	for i := 0; i < 2000; i++ {
		r := sl.Row()
		types.PutValue(r, secs, 0, types.IntVal(int64(rng.Intn(500))))
		types.PutValue(r, secs, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, secs, 2, types.DateVal(day-int64(rng.Intn(3))))
		types.PutValue(r, secs, 3, types.FloatVal(float64(rng.Intn(1000))))
		sl.Add()
	}
	sl.Close()
	return c
}

// TestCrossSubstrateEventKinds checks the real engine and the
// virtual-time simulator emit the same core event taxonomy for an
// analogous scan→aggregate plan, so analysis tooling reads either
// stream identically.
func TestCrossSubstrateEventKinds(t *testing.T) {
	// Engine side: EP-mode distributed aggregation.
	c, _ := buildTestCluster(t, EP, 2)
	scope := telemetry.NewScope("q-engine")
	engMem := telemetry.NewMemSink()
	scope.Attach(engMem)
	if _, err := c.RunScoped(
		"SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id", scope); err != nil {
		t.Fatal(err)
	}

	// Simulator side: scan feeding a blocking aggregation under EP.
	g := &sim.Graph{
		Groups: []*sim.SegGroup{
			{ID: 0, Name: "S1", OnAllNodes: true, Stages: []sim.Stage{{
				Name: "scan", SourceEdge: -1, LocalRows: 1e6,
				CostPerTuple: 25e-9, Selectivity: 0.02, OutEdge: 0,
			}}},
			{ID: 1, Name: "S2", OnAllNodes: true, Stages: []sim.Stage{{
				Name: "agg", SourceEdge: 0, CostPerTuple: 100e-9,
				Selectivity: 0.05, OutEdge: -1, ToResult: true, EmitAtEnd: true,
			}}},
		},
		Edges:          []*sim.Edge{{ID: 0, From: 0, To: 1, BytesPerTuple: 48}},
		TotalInputRows: 2e6,
	}
	s, err := sim.New(sim.Cluster{Nodes: 2, Cores: 2, Quantum: 2 * time.Millisecond},
		g, &sim.EPPolicy{Tick: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	simMem := telemetry.NewMemSink()
	s.Scope().Attach(simMem)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	kindsOf := func(m *telemetry.MemSink) map[telemetry.Kind]bool {
		out := map[telemetry.Kind]bool{}
		for _, ev := range m.Events() {
			out[ev.Rec.Kind()] = true
		}
		return out
	}
	eng, simK := kindsOf(engMem), kindsOf(simMem)
	for _, k := range []telemetry.Kind{
		telemetry.KindQueryPhase,
		telemetry.KindSegmentStageChange,
		telemetry.KindWorkerExpand,
	} {
		if !eng[k] {
			t.Errorf("engine stream missing %v", k)
		}
		if !simK[k] {
			t.Errorf("sim stream missing %v", k)
		}
	}
}
