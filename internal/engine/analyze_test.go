package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/telemetry"
)

// TestExplainAnalyzeMatchesTelemetry is the tentpole invariant: every
// per-operator number EXPLAIN ANALYZE renders is the value of the
// corresponding telemetry counter — same scope, same instrument — so
// the annotated plan and any attached sink can never disagree.
func TestExplainAnalyzeMatchesTelemetry(t *testing.T) {
	c, ref := buildTestCluster(t, EP, 2)
	q := `SELECT t.acct_id a, sum(t.trade_volume)
		FROM trades t JOIN securities s ON t.acct_id = s.acct_id
		GROUP BY t.acct_id`
	res, an, err := c.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("analyzed query returned no rows")
	}
	_ = ref

	rendered := an.Render()
	sawRows := false
	for _, s := range an.Plan.Segments {
		plan.Walk(s.Root, func(op plan.PhysOp) {
			rows, blocks, busy := an.OpStats(op)
			// The rendered annotation must carry exactly the counter
			// values (the analyzer reads them from the scope; any drift
			// means a second bookkeeping path crept in).
			want := fmt.Sprintf("(rows=%d blocks=%d time=", rows, blocks)
			if !strings.Contains(rendered, want) {
				t.Errorf("%s: rendering lacks %q\n%s", plan.OpLabel(op), want, rendered)
			}
			if rows > 0 {
				sawRows = true
			}
			// Cross-check against the raw scope counters directly.
			id, ok := an.OpID(op)
			if !ok {
				t.Fatalf("%s has no op id", plan.OpLabel(op))
			}
			if got := res.Scope.Counter(telemetry.OpCtr(id, telemetry.OpRows)).Load(); got != rows {
				t.Errorf("%s: OpStats rows %d != scope counter %d", plan.OpLabel(op), rows, got)
			}
			if got := res.Scope.Counter(telemetry.OpCtr(id, telemetry.OpBlocks)).Load(); got != blocks {
				t.Errorf("%s: OpStats blocks %d != scope counter %d", plan.OpLabel(op), blocks, got)
			}
			if busy < 0 {
				t.Errorf("%s: negative busy time %v", plan.OpLabel(op), busy)
			}
		})
	}
	if !sawRows {
		t.Error("no operator recorded rows > 0")
	}

	// Scans must account for every loaded row across the cluster: each
	// node scans its partition, the shared counter sums them.
	for _, s := range an.Plan.Segments {
		plan.Walk(s.Root, func(op plan.PhysOp) {
			sc, ok := op.(*plan.PScan)
			if !ok || sc.Pred != nil {
				return
			}
			rows, _, _ := an.OpStats(op)
			var want int64
			switch sc.Table.Name {
			case "trades":
				want = int64(len(ref.trades))
			case "securities":
				want = int64(len(ref.secs))
			default:
				return
			}
			if rows != want {
				t.Errorf("scan %s counted %d rows, table has %d", sc.Table.Name, rows, want)
			}
		})
	}

	// Segment parallelism: every segment ran, so every peak is >= 1.
	for _, s := range an.Plan.Segments {
		peak, mean := an.SegmentWorkers(s)
		if peak < 1 {
			t.Errorf("segment %d worker peak = %d, want >= 1", s.ID, peak)
		}
		if mean <= 0 {
			t.Errorf("segment %d worker mean = %f, want > 0", s.ID, mean)
		}
	}
	if !strings.Contains(rendered, "workers peak=") || !strings.Contains(rendered, "net=") {
		t.Errorf("rendering lacks worker/exchange annotations:\n%s", rendered)
	}
}

// TestExplainAnalyzeMatchesPlainRun checks ANALYZE changes observation
// only: the analyzed query returns the same result as the plain run.
func TestExplainAnalyzeMatchesPlainRun(t *testing.T) {
	c, _ := buildTestCluster(t, EP, 2)
	q := "SELECT sec_code, count(*) c, sum(trade_volume) FROM trades GROUP BY sec_code"
	plainRes, err := c.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	azRes, an, err := c.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if plainRes.NumRows() != azRes.NumRows() {
		t.Fatalf("analyzed run returned %d rows, plain run %d", azRes.NumRows(), plainRes.NumRows())
	}
	if an.Duration <= 0 {
		t.Errorf("analysis duration = %v", an.Duration)
	}
	// The plain run must NOT have per-operator counters: the wrapper is
	// only inserted for analyzed/span-traced queries, keeping the
	// default hot path untouched.
	for name := range plainRes.Scope.CounterSnapshot() {
		if strings.HasPrefix(name, "op.") {
			t.Errorf("plain run registered per-op counter %q — instrumentation leaked into the default path", name)
		}
	}
}

// TestSpanTraceExport runs a traced query end to end through the
// registry and validates the exported Chrome trace: valid JSON, spans
// from every layer (operator, elastic, query), worker attribution.
func TestSpanTraceExport(t *testing.T) {
	reg := telemetry.NewRegistry(true)
	telemetry.SetDefaultRegistry(reg)
	defer telemetry.SetDefaultRegistry(nil)

	c, _ := buildTestCluster(t, EP, 2)
	res, err := c.Run("SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id")
	if err != nil {
		t.Fatal(err)
	}
	qrec := reg.Lookup(res.Scope.Name())
	if qrec == nil {
		t.Fatal("registry lost the query")
	}
	if qrec.State() != "done" {
		t.Fatalf("query state = %q, want done", qrec.State())
	}
	spans := qrec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans captured for a span-enabled registry")
	}
	cats := map[string]int{}
	for _, ev := range spans {
		cats[ev.Rec.(telemetry.SpanEnd).Cat]++
	}
	for _, want := range []string{"op", "elastic", "query", "segment"} {
		if cats[want] == 0 {
			t.Errorf("no %q spans captured (got %v)", want, cats)
		}
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) < len(spans) {
		t.Errorf("trace has %d events for %d spans", len(tr.TraceEvents), len(spans))
	}
}

// TestRegistryTracksFailures checks failed queries land in the recent
// ring with their error.
func TestRegistryTracksFailures(t *testing.T) {
	reg := telemetry.NewRegistry(false)
	telemetry.SetDefaultRegistry(reg)
	defer telemetry.SetDefaultRegistry(nil)

	c, _ := buildTestCluster(t, EP, 2)
	_, err := c.Run("SELECT no_such_col FROM trades")
	if err == nil {
		t.Skip("expected a compile error; query unexpectedly succeeded")
	}
	// Compile errors never reach the registry (no scope exists yet);
	// run a valid query and confirm it is tracked.
	if _, err := c.Run("SELECT count(*) c FROM trades"); err != nil {
		t.Fatal(err)
	}
	started, done := reg.Counts()
	if started != 1 || done != 1 {
		t.Fatalf("counts = %d started / %d done, want 1/1", started, done)
	}
	qs := reg.Queries()
	if len(qs) != 1 || qs[0].State() != "done" || qs[0].SQL == "" {
		t.Fatalf("queries = %+v", qs)
	}
}
