package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/faults"
	"repro/internal/types"
)

// vecQueries exercises every fused batch-kernel shape plus the
// row-at-a-time fallbacks (OR, CASE, NOT) through full distributed
// plans: filters into selection vectors, projection kernels, batch key
// encoding for joins and aggregation, LIKE over CHAR columns.
var vecQueries = []string{
	// Fused filter shapes: col-op-const over int/float/date, BETWEEN, IN,
	// conjunctions narrowing one selection vector.
	"SELECT count(*) FROM trades WHERE trade_volume < 700",
	"SELECT count(*) FROM trades WHERE acct_id >= 100 AND trade_volume < 900 AND sec_code <> 7",
	"SELECT count(*) FROM trades WHERE trade_volume BETWEEN 250 AND 750",
	"SELECT count(*) FROM trades WHERE sec_code IN (1, 2, 3, 5, 8, 13, 21)",
	// Fallback shapes: disjunction and NOT.
	"SELECT count(*) FROM trades WHERE acct_id < 50 OR trade_volume > 950",
	"SELECT count(*) FROM trades WHERE NOT (trade_volume < 500)",
	// Column-op-column comparison.
	"SELECT count(*) FROM trades WHERE acct_id < sec_code",
	// Projection kernels: arithmetic, date EXTRACT; aggregation over
	// computed arguments (fused batch arg kernels).
	`SELECT sec_code, sum(trade_volume * 0.07), min(trade_volume - 10), count(*)
	 FROM trades WHERE acct_id < 300 GROUP BY sec_code`,
	"SELECT EXTRACT(YEAR FROM trade_date), count(*) FROM trades GROUP BY EXTRACT(YEAR FROM trade_date)",
	// CASE rides the fallback kernel inside a vectorized aggregation.
	`SELECT sec_code, sum(CASE WHEN trade_volume > 500 THEN 1 ELSE 0 END)
	 FROM trades GROUP BY sec_code`,
	// String kernels: LIKE / NOT LIKE over CHAR columns, string
	// comparisons, string group keys (batch key encoding of CHAR data).
	"SELECT count(*) FROM accounts WHERE name LIKE 'acct%'",
	"SELECT count(*) FROM accounts WHERE name NOT LIKE '%7%'",
	"SELECT count(*) FROM accounts WHERE region = 'east'",
	"SELECT region, count(*), sum(balance) FROM accounts GROUP BY region",
	// Distributed join with int keys; join feeding a string group-by.
	`SELECT T.sec_code, count(*) FROM trades T, securities S
	 WHERE T.acct_id = S.acct_id AND S.entry_volume < 600 GROUP BY T.sec_code`,
	`SELECT A.region, count(*) FROM trades T, accounts A
	 WHERE T.acct_id = A.acct_id AND T.trade_volume > 200 GROUP BY A.region`,
}

// buildVecCluster is buildFaultCluster plus a CHAR-bearing accounts
// table, so the equivalence suite covers string kernels end to end.
func buildVecCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cat := catalog.New(cfg.Nodes)
	trades := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("trade_date", types.Date),
		types.Col("trade_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "trades", Schema: trades, PartKey: []int{1}})
	secs := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("entry_date", types.Date),
		types.Col("entry_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "securities", Schema: secs, PartKey: []int{0}})
	accounts := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Char("name", 12),
		types.Char("region", 8),
		types.Col("balance", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "accounts", Schema: accounts, PartKey: []int{0}})

	c := NewCluster(cfg, cat)

	rng := rand.New(rand.NewSource(42))
	day := types.MustParseDate("2010-10-30")
	tl, _ := c.NewTableLoader("trades")
	for i := 0; i < 8000; i++ {
		r := tl.Row()
		types.PutValue(r, trades, 0, types.IntVal(int64(rng.Intn(500))))
		types.PutValue(r, trades, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, trades, 2, types.DateVal(day-int64(rng.Intn(5))))
		types.PutValue(r, trades, 3, types.FloatVal(float64(rng.Intn(1000))))
		tl.Add()
	}
	tl.Close()
	sl, _ := c.NewTableLoader("securities")
	for i := 0; i < 2000; i++ {
		r := sl.Row()
		types.PutValue(r, secs, 0, types.IntVal(int64(rng.Intn(500))))
		types.PutValue(r, secs, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, secs, 2, types.DateVal(day-int64(rng.Intn(3))))
		types.PutValue(r, secs, 3, types.FloatVal(float64(rng.Intn(1000))))
		sl.Add()
	}
	sl.Close()
	regions := []string{"east", "west", "north", "south"}
	al, _ := c.NewTableLoader("accounts")
	for i := 0; i < 500; i++ {
		r := al.Row()
		types.PutValue(r, accounts, 0, types.IntVal(int64(i)))
		types.PutValue(r, accounts, 1, types.StrVal(fmt.Sprintf("acct-%04d", i)))
		types.PutValue(r, accounts, 2, types.StrVal(regions[rng.Intn(len(regions))]))
		types.PutValue(r, accounts, 3, types.FloatVal(float64(rng.Intn(100000))/100))
		al.Add()
	}
	al.Close()
	return c
}

// TestVectorizedRowExecEquivalence is the tentpole's metamorphic
// harness: every query must produce identical canonical results on the
// default (vectorized) path and under Config.RowExec, across execution
// modes.
func TestVectorizedRowExecEquivalence(t *testing.T) {
	for _, mode := range []Mode{EP, SP} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := faultBaseConfig(mode, 2)
			vec := buildVecCluster(t, cfg)
			rowCfg := cfg
			rowCfg.RowExec = true
			row := buildVecCluster(t, rowCfg)
			for qi, q := range vecQueries {
				vres, err := vec.Run(q)
				if err != nil {
					t.Fatalf("query %d vectorized: %v", qi, err)
				}
				rres, err := row.Run(q)
				if err != nil {
					t.Fatalf("query %d rowexec: %v", qi, err)
				}
				if vf, rf := fingerprint(vres), fingerprint(rres); vf != rf {
					t.Errorf("query %d diverged (%s)\nquery: %s\nvec: %.200s\nrow: %.200s",
						qi, mode, q, vf, rf)
				}
			}
		})
	}
}

// TestVectorizedRowExecEquivalenceUnderFaults repeats the equivalence
// check with a seeded fault schedule active on both clusters: frame
// drops, duplicates, corruption and worker crashes must not open a gap
// between the vectorized and row-at-a-time paths (the issue's required
// fault-schedule acceptance case).
func TestVectorizedRowExecEquivalenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault schedules are slow under -short")
	}
	fc := faults.Config{Seed: 11, Drop: 0.03, Dup: 0.02, Corrupt: 0.01, CrashWorker: 0.001}

	cfg := faultBaseConfig(EP, 2)
	cfg.Faults = faults.New(fc)
	cfg.Retry = &fastFaultRetry
	vec := buildVecCluster(t, cfg)

	rowCfg := faultBaseConfig(EP, 2)
	rowCfg.Faults = faults.New(fc)
	rowCfg.Retry = &fastFaultRetry
	rowCfg.RowExec = true
	row := buildVecCluster(t, rowCfg)

	for qi, q := range vecQueries {
		vres, err := vec.Run(q)
		if err != nil {
			t.Fatalf("query %d vectorized under %s: %v", qi, fc.String(), err)
		}
		rres, err := row.Run(q)
		if err != nil {
			t.Fatalf("query %d rowexec under %s: %v", qi, fc.String(), err)
		}
		if vf, rf := fingerprint(vres), fingerprint(rres); vf != rf {
			t.Errorf("query %d diverged under faults %s\nquery: %s\nvec: %.200s\nrow: %.200s",
				qi, fc.String(), q, vf, rf)
		}
	}
}
