package engine

import (
	"context"
	"fmt"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// This file is the prepared-statement / plan-cache face of the
// cluster. Compilation is keyed on the statement's normalized text and
// the catalog version it was planned against, so repeated statements —
// whether re-submitted ad hoc or EXECUTEd through a session — skip
// parse and plan entirely. Cached plans may be parameterized templates
// (expr.Param slots for $n); RunBound specializes them copy-on-write
// before execution, so one template serves concurrent EXECUTEs.

// CompileCached compiles query against the current catalog, consulting
// the cluster's plan cache first. The returned bool reports a cache
// hit. The plan may be a parameterized template (NumParams > 0): it is
// shared and must not be mutated — pass it through plan.Bind (or
// RunBound) to execute.
func (c *Cluster) CompileCached(query string) (*plan.Plan, bool, error) {
	cache := c.planCache
	if cache == nil {
		p, err := plan.Compile(query, c.cat)
		return p, false, err
	}
	key, err := sql.Normalize(query)
	if err != nil {
		// Not lexable: let the parser produce its richer error.
		p, cerr := plan.Compile(query, c.cat)
		return p, false, cerr
	}
	version := c.cat.Version()
	reg := telemetry.DefaultRegistry()
	if p, ok := cache.Get(key, version); ok {
		reg.Counter(telemetry.CtrPlanCacheHits).Inc()
		return p, true, nil
	}
	reg.Counter(telemetry.CtrPlanCacheMisses).Inc()
	evBefore := cache.Stats().Evictions
	p, err := plan.Compile(query, c.cat)
	if err != nil {
		return nil, false, err
	}
	cache.Put(key, version, p)
	if d := cache.Stats().Evictions - evBefore; d > 0 {
		reg.Counter(telemetry.CtrPlanCacheEvictions).Add(d)
	}
	return p, false, nil
}

// PlanCacheStats snapshots the cluster's plan-cache counters.
func (c *Cluster) PlanCacheStats() plan.CacheStats {
	return c.planCache.Stats()
}

// CatalogVersion reports the catalog version plans are currently keyed
// on; sessions use it to detect stale prepared statements.
func (c *Cluster) CatalogVersion() int64 {
	return c.cat.Version()
}

// RunBound binds args into the (possibly cached, possibly
// parameterized) plan and executes it. This is the EXECUTE path: the
// template stays untouched; the specialized instance comes from the
// template's bound-plan pool and returns there after a successful run,
// so steady-state EXECUTEs skip the copy-on-write clone. sqlText
// labels telemetry and errors.
func (c *Cluster) RunBound(ctx context.Context, p *plan.Plan, args []types.Value, sqlText string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bound, err := p.AcquireBound(args)
	if err != nil {
		return nil, err
	}
	res, err := c.runAuto(ctx, bound, nil, sqlText)
	if err == nil {
		// Error paths may leave teardown stragglers that still hold the
		// instance's iterators; only a cleanly joined run recycles it.
		p.ReleaseBound(bound)
	}
	return res, err
}

// RunPrepared is CompileCached + RunBound in one call: the ad-hoc
// serving path for drivers that send text + args without an explicit
// PREPARE round trip.
func (c *Cluster) RunPrepared(ctx context.Context, query string, args []types.Value) (*Result, error) {
	p, _, err := c.CompileCached(query)
	if err != nil {
		return nil, err
	}
	return c.RunBound(ctx, p, args, query)
}

// runAuto executes a fully bound plan, taking the serial fast path
// when the cluster opted in and the plan is eligible, else the regular
// parallel dataflow. sc may be nil: each path then creates the scope
// that suits it (the fast path's is ring-less), so entry points that
// don't hand scopes to callers skip the allocation.
func (c *Cluster) runAuto(ctx context.Context, p *plan.Plan, sc *telemetry.Scope, sqlText string) (*Result, error) {
	if p.NumParams > 0 {
		return nil, fmt.Errorf("engine: plan has %d unbound parameters; use PREPARE/EXECUTE or pass arguments", p.NumParams)
	}
	if c.fastEligible(p) {
		if res, ok, err := c.runFast(ctx, p, sc, sqlText); ok {
			return res, err
		}
	}
	if sc == nil {
		sc = newQueryScope()
	}
	return c.runPlan(ctx, p, sc, sqlText, nil)
}
