package engine

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// metamorphicQueries is the query set of the fault-equivalence harness:
// scan/filter, repartitioned aggregation, and a distributed join — one
// per exchange topology the fabrics support.
var metamorphicQueries = []string{
	"SELECT count(*) FROM trades WHERE trade_volume < 700",
	"SELECT sec_code, sum(trade_volume), count(*) FROM trades WHERE acct_id < 300 GROUP BY sec_code",
	`SELECT T.sec_code, count(*) FROM trades T, securities S
	 WHERE T.acct_id = S.acct_id AND S.entry_volume < 600 GROUP BY T.sec_code`,
}

// fastFaultRetry keeps fault-path tests quick: injected losses cost
// milliseconds, not the production 25ms base backoff.
var fastFaultRetry = network.RetryPolicy{
	Base: 2 * time.Millisecond, Max: 50 * time.Millisecond,
	Deadline: 60 * time.Second, Jitter: 0.2,
}

// buildFaultCluster builds a cluster with the caller's full Config over
// either fabric, loading the same seed-42 dataset as buildTestCluster so
// result fingerprints are comparable across every cluster in the file.
func buildFaultCluster(t *testing.T, cfg Config, tcp bool) *Cluster {
	t.Helper()
	cat := catalog.New(cfg.Nodes)
	trades := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("trade_date", types.Date),
		types.Col("trade_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "trades", Schema: trades, PartKey: []int{1}})
	secs := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("entry_date", types.Date),
		types.Col("entry_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "securities", Schema: secs, PartKey: []int{0}})

	var c *Cluster
	if tcp {
		var err error
		c, err = NewClusterTCP(cfg, cat)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
	} else {
		c = NewCluster(cfg, cat)
	}

	rng := rand.New(rand.NewSource(42))
	day := types.MustParseDate("2010-10-30")
	tl, _ := c.NewTableLoader("trades")
	for i := 0; i < 8000; i++ {
		r := tl.Row()
		types.PutValue(r, trades, 0, types.IntVal(int64(rng.Intn(500))))
		types.PutValue(r, trades, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, trades, 2, types.DateVal(day-int64(rng.Intn(5))))
		types.PutValue(r, trades, 3, types.FloatVal(float64(rng.Intn(1000))))
		tl.Add()
	}
	tl.Close()
	sl, _ := c.NewTableLoader("securities")
	for i := 0; i < 2000; i++ {
		r := sl.Row()
		types.PutValue(r, secs, 0, types.IntVal(int64(rng.Intn(500))))
		types.PutValue(r, secs, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, secs, 2, types.DateVal(day-int64(rng.Intn(3))))
		types.PutValue(r, secs, 3, types.FloatVal(float64(rng.Intn(1000))))
		sl.Add()
	}
	sl.Close()
	return c
}

// faultBaseConfig is the shared cluster shape of the fault tests.
func faultBaseConfig(mode Mode, nodes int) Config {
	return Config{
		Nodes: nodes, CoresPerNode: 2, Mode: mode,
		BlockSize: 2048, SchedTick: 5 * time.Millisecond, ExchangeBuffer: 8,
	}
}

// noFaultFingerprints runs the metamorphic queries on a clean static
// cluster and returns their canonical results — the oracle every
// faulted run must reproduce exactly.
func noFaultFingerprints(t *testing.T) []string {
	t.Helper()
	c := buildFaultCluster(t, faultBaseConfig(SP, 2), false)
	fps := make([]string, len(metamorphicQueries))
	for i, q := range metamorphicQueries {
		res, err := c.Run(q)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		fps[i] = fingerprint(res)
	}
	return fps
}

// TestMetamorphicFaultSchedules is the correctness harness of DESIGN.md
// §9: the same queries under N seeded random fault schedules — frame
// drops, duplicates, corruption, delays and worker crashes, landing at
// schedule-dependent points while EP's scheduler expands and shrinks
// pools — must return results identical to a static no-fault run, on
// both fabrics. The CLAIMS_FAULTS environment variable (set by the CI
// fault matrix) appends an extra schedule.
func TestMetamorphicFaultSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("fault schedules are slow under -short")
	}
	oracle := noFaultFingerprints(t)

	schedules := []faults.Config{
		{Seed: 1, Drop: 0.03, Dup: 0.02, Corrupt: 0.01, Delay: 300 * time.Microsecond, DelayProb: 0.2},
		{Seed: 2, Drop: 0.05, CrashWorker: 0.002},
		{Seed: 3, Dup: 0.1, Corrupt: 0.05, Delay: time.Millisecond, DelayProb: 0.1, CrashWorker: 0.001},
	}
	if spec := os.Getenv("CLAIMS_FAULTS"); spec != "" {
		extra, err := faults.Parse(spec)
		if err != nil {
			t.Fatalf("CLAIMS_FAULTS=%q: %v", spec, err)
		}
		schedules = append(schedules, extra)
	}

	for si, fc := range schedules {
		for _, fabric := range []string{"inproc", "tcp"} {
			t.Run(fmt.Sprintf("schedule%d/seed%d/%s", si, fc.Seed, fabric), func(t *testing.T) {
				cfg := faultBaseConfig(EP, 2)
				cfg.Faults = faults.New(fc)
				cfg.Retry = &fastFaultRetry
				c := buildFaultCluster(t, cfg, fabric == "tcp")
				for qi, q := range metamorphicQueries {
					scope := telemetry.NewScope(fmt.Sprintf("meta-%d-%s-%d", si, fabric, qi))
					res, err := c.RunScoped(q, scope)
					if err != nil {
						t.Fatalf("query %d under %s: %v", qi, fc.String(), err)
					}
					if got := fingerprint(res); got != oracle[qi] {
						t.Errorf("query %d result diverged under schedule %s\nwant %.200s\ngot  %.200s",
							qi, fc.String(), oracle[qi], got)
					}
					if n := scope.Counter(telemetry.CtrNetDupApplied).Load(); n != 0 {
						t.Errorf("query %d: %d duplicate blocks applied", qi, n)
					}
				}
			})
		}
	}
}

// TestAcceptanceDropDelayTCP is the issue's acceptance scenario: TCP
// fabric with drop=0.05,delay=10ms — every metamorphic query completes
// with results identical to the clean run, telemetry shows at least one
// retry, and zero duplicate-applied blocks.
func TestAcceptanceDropDelayTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("10ms injected delays are slow under -short")
	}
	oracle := noFaultFingerprints(t)

	fc, err := faults.Parse("drop=0.05,delay=10ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultBaseConfig(SP, 2)
	cfg.Faults = faults.New(fc)
	cfg.Retry = &fastFaultRetry
	c := buildFaultCluster(t, cfg, true)

	var retries int64
	for qi, q := range metamorphicQueries {
		scope := telemetry.NewScope(fmt.Sprintf("accept-%d", qi))
		res, err := c.RunScoped(q, scope)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if got := fingerprint(res); got != oracle[qi] {
			t.Errorf("query %d diverged under drop=0.05,delay=10ms", qi)
		}
		if n := scope.Counter(telemetry.CtrNetDupApplied).Load(); n != 0 {
			t.Errorf("query %d: %d duplicate blocks applied", qi, n)
		}
		retries += scope.Counter(telemetry.CtrNetRetries).Load()
	}
	if retries == 0 {
		t.Error("5% frame loss across three queries produced no retries")
	}
}

// TestWorkerCrashDegradesGracefully kills one worker mid-pipeline —
// between phases (before it processes its first block) and between
// blocks — and checks the query degrades onto re-expanded workers with
// identical results, visible as a Recovery{re-expand} in telemetry.
func TestWorkerCrashDegradesGracefully(t *testing.T) {
	oracle := noFaultFingerprints(t)
	const joinQuery = 2 // the multi-segment pipeline

	cases := []struct {
		name        string
		mode        Mode
		tcp         bool
		afterBlocks int64
	}{
		{"between-phases/ME/inproc", ME, false, 0},
		{"between-blocks/SP/inproc", SP, false, 3},
		{"between-blocks/SP/tcp", SP, true, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := faults.New(faults.Config{})
			inj.PlanWorkerCrash("*", tc.afterBlocks)
			cfg := faultBaseConfig(tc.mode, 2)
			cfg.Faults = inj
			cfg.Retry = &fastFaultRetry
			c := buildFaultCluster(t, cfg, tc.tcp)

			scope := telemetry.NewScope("crash-" + tc.name)
			mem := telemetry.NewMemSink(telemetry.KindRecovery, telemetry.KindFaultInjected)
			scope.Attach(mem)
			res, err := c.RunScoped(metamorphicQueries[joinQuery], scope)
			if err != nil {
				t.Fatalf("crashed-worker query: %v", err)
			}
			if got := fingerprint(res); got != oracle[joinQuery] {
				t.Errorf("result diverged after worker crash\nwant %.200s\ngot  %.200s",
					oracle[joinQuery], got)
			}

			var crashed, reexpanded bool
			for _, ev := range mem.Events() {
				switch rec := ev.Rec.(type) {
				case telemetry.FaultInjected:
					if rec.Site == "worker" && rec.Fault == "crash" {
						crashed = true
					}
				case telemetry.Recovery:
					if rec.Action == "re-expand" {
						reexpanded = true
					}
				}
			}
			if !crashed {
				t.Fatal("the planned worker crash never fired")
			}
			if !reexpanded {
				t.Error("no re-expansion recovery recorded")
			}
			if scope.Counter(telemetry.CtrRecoverExpands).Load() == 0 {
				t.Error("recover.expands counter is zero")
			}
		})
	}
}

// TestQueryErrorDoesNotHangOrLeak forces a mid-query link severance: the
// query must return an error (not wedge in the result collector), and
// the TCP cluster must shut down cleanly afterwards — the regression
// test for the read-loop/sender goroutine leak on query error.
func TestQueryErrorDoesNotHangOrLeak(t *testing.T) {
	inj := faults.New(faults.Config{})
	inj.PlanSever(0, 1, 2) // cut the slave 0 → slave 1 link mid-stream
	cfg := faultBaseConfig(SP, 2)
	cfg.Faults = inj
	pol := fastFaultRetry
	pol.MaxAttempts = 3
	pol.Deadline = 5 * time.Second
	cfg.Retry = &pol
	c := buildFaultCluster(t, cfg, true)

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		// The join repartitions trades by acct_id (the table is stored by
		// sec_code), so blocks must cross the severed 0→1 link.
		res, err := c.Run(metamorphicQueries[2])
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err == nil {
			t.Fatal("query across a severed link reported success")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("query across a severed link hung")
	}
}
