package engine

import (
	"fmt"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// segAdapter exposes a running segment instance to the dynamic
// scheduler (sched.SegmentHandle): it derives the Section 4 metrics —
// instantaneous processing rate, visit rate from block tails,
// starvation and blockage flags — from the elastic iterator's counters,
// and maps Expand/Shrink onto the worker pool.
type segAdapter struct {
	e    *exec
	inst *segInst
	name string

	lastAt          time.Time
	lastIn          int64
	lastInsertWaits int64
}

func newSegAdapter(e *exec, inst *segInst) *segAdapter {
	return &segAdapter{
		e:      e,
		inst:   inst,
		name:   fmt.Sprintf("S%d@%d", inst.seg.ID, inst.node),
		lastAt: time.Now(),
	}
}

// Name implements sched.SegmentHandle.
func (a *segAdapter) Name() string { return a.name }

// Metrics implements sched.SegmentHandle.
func (a *segAdapter) Metrics() sched.Metrics {
	now := time.Now()
	snap := a.inst.el.Snapshot()
	dt := now.Sub(a.lastAt).Seconds()
	if dt <= 0 {
		dt = 1e-9
	}
	rate := float64(snap.InTuples-a.lastIn) / dt
	blocked := snap.InsertWaits > a.lastInsertWaits

	// Starved: nothing processed, upstream still open, and every inbox
	// empty — the segment cannot use more cores (Figure 11's S2 while
	// the filter selectivity is zero). Scan-rooted segments without
	// mergers are never starved: their input is resident.
	starved := false
	if rate == 0 && !snap.Finished && len(a.inst.inboxes) > 0 && !a.inst.hasScan {
		starved = true
		for _, in := range a.inst.inboxes {
			if in.Len() > 0 || in.AllProducersDone() {
				starved = false
				break
			}
		}
	}

	visit := 1.0
	for _, m := range a.inst.mergers {
		if v := m.VisitRate(); v > 0 {
			visit = v
		}
	}

	a.lastAt = now
	a.lastIn = snap.InTuples
	a.lastInsertWaits = snap.InsertWaits

	return sched.Metrics{
		Parallelism: snap.Parallelism,
		Rate:        rate,
		VisitRate:   visit,
		Starved:     starved,
		Blocked:     blocked,
		Done:        snap.Finished,
	}
}

// Expand implements sched.SegmentHandle. Scheduler expansions are
// elective: they fail when the node's core-lease pool is exhausted by
// other segments (of this or any concurrent query), except the revive
// of a zero-worker pool, which oversubscribes rather than stall the
// dataflow.
func (a *segAdapter) Expand() bool {
	if a.inst.el.Finished() {
		return false
	}
	return a.e.expand(a.inst, false)
}

// Shrink implements sched.SegmentHandle. The last worker is never
// shrunk away: a zero-worker segment would never drive its dataflow to
// end-of-file. The guard counts workers not already marked for
// termination — Parallelism still includes exiting victims, so it would
// let back-to-back scheduler ticks drain the pool to zero.
func (a *segAdapter) Shrink() bool {
	if a.inst.el.PendingWorkers() <= 1 {
		return false
	}
	return a.inst.el.Shrink() != nil
}

// DecisionScope implements sched.ScopedHandle: scheduling decisions
// that touch this segment land on its query's telemetry scope, so each
// of the (possibly many) queries sharing the cluster-resident
// schedulers sees exactly its own moves.
func (a *segAdapter) DecisionScope() *telemetry.Scope { return a.e.scope }
