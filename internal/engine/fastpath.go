package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/iterator"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// The serial fast path. High-QPS point lookups spend microseconds in
// operators and hundreds of microseconds in the parallel dataflow
// machinery around them: elastic pools, exchange staging, sampler and
// scheduler goroutines, memory admission. For a small, gather-only
// plan none of that machinery changes the answer, so an opted-in
// cluster (Config.FastPath) runs eligible plans to completion on the
// calling goroutine: segments execute in dependency order, data
// segments once per data node, and exchange edges become in-memory
// block hand-offs. Anything the fast path cannot prove harmless —
// distribution, fault injection, repartition exchanges, joins, scans
// above Config.FastPathRows — falls back to the regular executor.

// fastEligible reports whether the plan can take the serial fast path
// on this cluster.
func (c *Cluster) fastEligible(p *plan.Plan) bool {
	if !c.cfg.FastPath || c.dist != nil || c.faultInj != nil {
		return false
	}
	var rows int64
	ok := true
	for _, seg := range p.Segments {
		// Repartition exchanges imply hash-distributed consumers; the
		// serial executor only models gather edges. Order-preserving
		// segments rely on the merge discipline of the exchange, which
		// plain block concatenation does not honor.
		if seg.Out != nil && seg.Out.PartKeys != nil {
			return false
		}
		if seg.OrderPreserving {
			return false
		}
		plan.Walk(seg.Root, func(op plan.PhysOp) {
			switch n := op.(type) {
			case *plan.PScan:
				rows += n.Table.Stats.Rows
			case *plan.PHashJoin:
				ok = false
			}
		})
	}
	if !ok || rows > c.cfg.FastPathRows {
		return false
	}
	// Every exchange must gather into a master-resident consumer: a
	// data-node consumer would mean broadcast, which the single-pass
	// segment loop does not model.
	segByID := make(map[int]*plan.Segment, len(p.Segments))
	for _, seg := range p.Segments {
		segByID[seg.ID] = seg
	}
	for _, ex := range p.Exchanges {
		cons, exists := segByID[ex.Consumer]
		if !exists || !cons.OnMaster {
			return false
		}
	}
	return true
}

// runFast executes an eligible bound plan serially. The middle return
// reports whether the fast path ran; (nil, false, nil) means the
// caller should fall back to the parallel executor.
func (c *Cluster) runFast(ctx context.Context, p *plan.Plan, sc *telemetry.Scope, sqlText string) (*Result, bool, error) {
	reg := telemetry.DefaultRegistry()
	if sc == nil && reg != nil {
		// Ring-less scope: the event ring is a debugging window whose
		// allocation would dominate a microsecond-scale query. With no
		// registry either, the query is untracked and needs no scope at
		// all — the serving loop's steady state.
		sc = telemetry.NewScope(fmt.Sprintf("q%d", queryScopeSeq.Add(1)), telemetry.WithRingSize(0))
	}
	qrec := reg.Begin(sc, sqlText)
	start := time.Now()
	res, err := c.runFastInner(ctx, p)
	reg.Finish(qrec, err)
	if err != nil {
		return nil, true, err
	}
	if reg != nil {
		reg.Counter(telemetry.CtrFastPathQueries).Inc()
	}
	res.Stats.Duration = time.Since(start)
	res.Scope = sc
	return res, true, nil
}

func (c *Cluster) runFastInner(ctx context.Context, p *plan.Plan) (*Result, error) {
	// Exchange edges become accumulated block slices; feeds[ex] is
	// replayed by the consumer's merger position.
	feeds := make(map[int][]*block.Block)
	order, err := fastTopoOrder(p)
	if err != nil {
		return nil, err
	}
	var final []*block.Block
	for _, seg := range order {
		nodes := []int{c.master()}
		if !seg.OnMaster {
			nodes = nodes[:0]
			for n := 0; n < c.cfg.Nodes; n++ {
				nodes = append(nodes, n)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		segOut, err := c.fastRunSegment(ctx, seg, nodes, feeds)
		if err != nil {
			return nil, err
		}
		if seg.Out != nil {
			feeds[seg.Out.Exchange] = append(feeds[seg.Out.Exchange], segOut...)
		}
		if seg == p.Final {
			final = segOut
		}
	}
	return &Result{
		Names:  p.OutputNames,
		Schema: p.Final.Root.Schema(),
		Blocks: final,
	}, nil
}

// fastRunSegment builds the segment's iterator tree — one tree for
// all nodes, partition scans serialized — and drains it with a single worker
// context. Fusing the per-node instances is what makes the fast path
// fast: operator construction (hash tables, barriers, compiled
// kernels) happens once per segment instead of once per node, and the
// serial drive makes the union-of-partitions input equivalent to the
// parallel per-node instances for the algebraic operators admitted by
// fastEligible.
func (c *Cluster) fastRunSegment(ctx context.Context, seg *plan.Segment, nodes []int, feeds map[int][]*block.Block) ([]*block.Block, error) {
	it, err := c.buildFast(seg.Root, nodes, feeds)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	wctx := &iterator.Ctx{Term: &iterator.TermFlag{}}
	if st := it.Open(wctx); st != iterator.OK {
		return nil, nil
	}
	var out []*block.Block
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, st := it.Next(wctx)
		if st != iterator.OK {
			return out, nil
		}
		if b.NumTuples() > 0 {
			out = append(out, b)
		}
	}
}

// buildFast mirrors buildOpInner without the parallel machinery:
// scans expand to a chain over every node's partition, mergers read
// materialized upstream blocks, stateful operators run unaccounted
// (the row cap bounds their state).
func (c *Cluster) buildFast(op plan.PhysOp, nodes []int, feeds map[int][]*block.Block) (iterator.Iterator, error) {
	switch n := op.(type) {
	case *plan.PScan:
		parts := make([]*storage.Partition, len(nodes))
		for i, node := range nodes {
			part, err := c.store(node).Partition(n.Table.Name)
			if err != nil {
				return nil, err
			}
			parts[i] = part
		}
		var it iterator.Iterator = iterator.NewSerialScan(parts, n.Sch)
		if n.Pred != nil {
			f := iterator.NewFilter(it, n.Sch, n.Pred)
			f.RowExec = c.cfg.RowExec
			it = f
		}
		return it, nil

	case *plan.PMerger:
		return &blockFeed{blocks: feeds[n.Exchange]}, nil

	case *plan.PFilter:
		child, err := c.buildFast(n.Child, nodes, feeds)
		if err != nil {
			return nil, err
		}
		f := iterator.NewFilter(child, n.Child.Schema(), n.Pred)
		f.RowExec = c.cfg.RowExec
		return f, nil

	case *plan.PProject:
		child, err := c.buildFast(n.Child, nodes, feeds)
		if err != nil {
			return nil, err
		}
		pr := iterator.NewProject(child, n.Child.Schema(), n.Sch, n.Exprs)
		pr.RowExec = c.cfg.RowExec
		return pr, nil

	case *plan.PHashAgg:
		child, err := c.buildFast(n.Child, nodes, feeds)
		if err != nil {
			return nil, err
		}
		ha := iterator.NewHashAgg(child, n.Child.Schema(), n.Keys, n.KeyNames, n.Specs, n.Algo)
		ha.RowExec = c.cfg.RowExec
		ha.Serial()
		return ha, nil

	case *plan.PSort:
		child, err := c.buildFast(n.Child, nodes, feeds)
		if err != nil {
			return nil, err
		}
		return iterator.NewSort(child, n.Child.Schema(), n.Keys), nil

	case *plan.PTopN:
		child, err := c.buildFast(n.Child, nodes, feeds)
		if err != nil {
			return nil, err
		}
		return iterator.NewTopN(child, n.Child.Schema(), n.Keys, int(n.N)), nil

	case *plan.PLimit:
		child, err := c.buildFast(n.Child, nodes, feeds)
		if err != nil {
			return nil, err
		}
		return iterator.NewLimit(child, n.Child.Schema(), n.N), nil
	}
	return nil, fmt.Errorf("engine: fast path cannot instantiate %T", op)
}

// fastTopoOrder orders segments so every exchange's producer runs
// before its consumer.
func fastTopoOrder(p *plan.Plan) ([]*plan.Segment, error) {
	prodOf := make(map[int][]int) // consumer segment ID → producer segment IDs
	for _, ex := range p.Exchanges {
		prodOf[ex.Consumer] = append(prodOf[ex.Consumer], ex.Producer)
	}
	done := make(map[int]bool, len(p.Segments))
	segByID := make(map[int]*plan.Segment, len(p.Segments))
	for _, seg := range p.Segments {
		segByID[seg.ID] = seg
	}
	var order []*plan.Segment
	for len(order) < len(p.Segments) {
		progressed := false
		for _, seg := range p.Segments {
			if done[seg.ID] {
				continue
			}
			ready := true
			for _, prod := range prodOf[seg.ID] {
				if !done[prod] {
					ready = false
					break
				}
			}
			if ready {
				done[seg.ID] = true
				order = append(order, seg)
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("engine: exchange cycle in plan")
		}
	}
	return order, nil
}

// blockFeed replays materialized upstream blocks as an iterator — the
// fast path's stand-in for a merger reading a network inbox.
type blockFeed struct {
	blocks []*block.Block
	i      int
}

func (f *blockFeed) Open(*iterator.Ctx) iterator.Status { return iterator.OK }

func (f *blockFeed) Next(ctx *iterator.Ctx) (*block.Block, iterator.Status) {
	if f.i >= len(f.blocks) {
		return nil, iterator.End
	}
	b := f.blocks[f.i]
	f.i++
	if ctx.OnBlockDone != nil {
		ctx.OnBlockDone(b.NumTuples())
	}
	return b, iterator.OK
}

func (f *blockFeed) Close() {}
