package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// buildFastFixture loads one deterministic trades table into a cluster
// with the given FastPath setting.
func buildFastFixture(t *testing.T, fast bool) *Cluster {
	t.Helper()
	cat := catalog.New(3)
	trades := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("trade_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "trades", Schema: trades, PartKey: []int{1}})
	c := NewCluster(Config{Nodes: 3, CoresPerNode: 2, FastPath: fast}, cat)
	tl, err := c.NewTableLoader("trades")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 900; i++ {
		r := tl.Row()
		types.PutValue(r, trades, 0, types.IntVal(int64(i%37)))
		types.PutValue(r, trades, 1, types.IntVal(int64(i%11)))
		types.PutValue(r, trades, 2, types.FloatVal(float64(i%101)))
		tl.Add()
	}
	tl.Close()
	return c
}

// fingerprint renders a result order-insensitively.
func fpFingerprint(r *Result) string {
	rows := make([]string, 0, r.NumRows())
	for _, vals := range r.Rows() {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.String()
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestFastPathMatchesFullExecutor diffs the serial fast path against
// the parallel dataflow across the operator shapes the fast path
// admits: scalar aggregates, group-by, filter+project, top-N, limit,
// and sort.
func TestFastPathMatchesFullExecutor(t *testing.T) {
	reg := telemetry.NewRegistry(false)
	telemetry.SetDefaultRegistry(reg)
	defer telemetry.SetDefaultRegistry(nil)

	fastC := buildFastFixture(t, true)
	defer fastC.Close()
	fullC := buildFastFixture(t, false)
	defer fullC.Close()

	// fast marks queries eligible for the serial path. GROUP BY acct_id
	// repartitions (trades is partitioned on sec_code), so those plans
	// must fall back to the parallel executor — and still agree.
	queries := []struct {
		q    string
		fast bool
	}{
		{"SELECT count(*) FROM trades", true},
		{"SELECT count(*), sum(trade_volume) FROM trades WHERE sec_code = 3", true},
		{"SELECT acct_id, sum(trade_volume) AS vol FROM trades GROUP BY acct_id", false},
		{"SELECT acct_id, trade_volume FROM trades WHERE sec_code = 7 AND trade_volume > 50", true},
		{"SELECT acct_id, sum(trade_volume) AS vol FROM trades GROUP BY acct_id ORDER BY vol DESC LIMIT 5", false},
		{"SELECT sec_code, min(trade_volume), max(trade_volume) FROM trades WHERE acct_id < 10 GROUP BY sec_code", true},
	}
	for _, tc := range queries {
		before := reg.Counter(telemetry.CtrFastPathQueries).Load()
		fastRes, err := fastC.Run(tc.q)
		if err != nil {
			t.Fatalf("%s: fast: %v", tc.q, err)
		}
		took := reg.Counter(telemetry.CtrFastPathQueries).Load() > before
		if took != tc.fast {
			t.Errorf("%s: fast path taken=%v, want %v", tc.q, took, tc.fast)
		}
		fullRes, err := fullC.Run(tc.q)
		if err != nil {
			t.Fatalf("%s: full: %v", tc.q, err)
		}
		if ff, pf := fpFingerprint(fastRes), fpFingerprint(fullRes); ff != pf {
			t.Errorf("%s: fast/full results differ:\nfast:\n%s\nfull:\n%s", tc.q, ff, pf)
		}
	}
}

// TestFastPathPreparedMatchesAdHoc checks the acceptance criterion
// directly: a prepared EXECUTE's result is fingerprint-identical to
// the equivalent ad-hoc SQL.
func TestFastPathPreparedMatchesAdHoc(t *testing.T) {
	c := buildFastFixture(t, true)
	defer c.Close()

	p, _, err := c.CompileCached("SELECT acct_id, trade_volume FROM trades WHERE sec_code = $1")
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []int64{0, 3, 10} {
		prep, err := c.RunBound(nil, p, []types.Value{types.IntVal(sec)}, "execute")
		if err != nil {
			t.Fatal(err)
		}
		adhoc, err := c.Run(fmt.Sprintf(
			"SELECT acct_id, trade_volume FROM trades WHERE sec_code = %d", sec))
		if err != nil {
			t.Fatal(err)
		}
		if pf, af := fpFingerprint(prep), fpFingerprint(adhoc); pf != af {
			t.Errorf("sec_code=%d: prepared/ad-hoc differ:\n%s\nvs\n%s", sec, pf, af)
		}
	}
}

// TestPlanCacheInvalidationOnCatalogBump is the stale-plan regression
// test: a cached plan must not survive a catalog-version bump.
func TestPlanCacheInvalidationOnCatalogBump(t *testing.T) {
	c := buildFastFixture(t, false)
	defer c.Close()

	q := "SELECT count(*) FROM trades"
	if _, hit, err := c.CompileCached(q); err != nil || hit {
		t.Fatalf("first compile: hit=%v err=%v, want cold miss", hit, err)
	}
	if _, hit, err := c.CompileCached(q); err != nil || !hit {
		t.Fatalf("second compile: hit=%v err=%v, want hit", hit, err)
	}

	c.cat.BumpVersion()
	if _, hit, err := c.CompileCached(q); err != nil || hit {
		t.Fatalf("post-bump compile: hit=%v err=%v, want recompile", hit, err)
	}
	// The recompiled plan is cached under the new version.
	if _, hit, err := c.CompileCached(q); err != nil || !hit {
		t.Fatalf("post-bump second compile: hit=%v err=%v, want hit", hit, err)
	}
}

// TestExplainAnalyzeCacheAnnotation checks that EXPLAIN ANALYZE
// renders the plan-cache outcome.
func TestExplainAnalyzeCacheAnnotation(t *testing.T) {
	c := buildFastFixture(t, false)
	defer c.Close()

	q := "SELECT count(*) FROM trades WHERE sec_code = 5"
	_, an, err := c.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(an.Render(), "plan-cache=miss") {
		t.Errorf("first analyze should render plan-cache=miss:\n%s", an.Render())
	}
	_, an, err = c.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(an.Render(), "plan-cache=hit") {
		t.Errorf("second analyze should render plan-cache=hit:\n%s", an.Render())
	}
}
