// Package engine executes distributed plans on a real in-process
// cluster: k slave nodes plus a master, each slave holding one hash
// partition of every table, segments instantiated per node with elastic
// worker pools, exchanges wired over the network transport, and — in EP
// mode — a dynamic scheduler per node reprovisioning cores at runtime.
//
// Three execution modes reproduce the paper's Section 5.4 comparison:
//
//	EP — elastic pipelining (elastic iterators + dynamic scheduler)
//	SP — static pipelining (fixed parallelism chosen at plan time)
//	ME — materialized execution (stage-at-a-time, full intermediate
//	     result staging between segments)
package engine

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// ErrClosed is returned by Run and its variants after Cluster.Close:
// the fabric and cluster schedulers are torn down, so starting a query
// would race the shutdown.
var ErrClosed = errors.New("engine: cluster is closed")

// ErrMemoryBudget is returned (wrapped) when a query cannot be admitted
// because its estimated working memory does not fit the per-node
// budget right now. The condition is transient — resident queries
// release their reservations as they complete — so callers (the query
// server) retry with backoff rather than failing the query.
var ErrMemoryBudget = errors.New("engine: memory budget exhausted")

// Mode selects the execution strategy.
type Mode int

const (
	// EP is elastic pipelining, the paper's contribution.
	EP Mode = iota
	// SP is static pipelining with fixed parallelism.
	SP
	// ME is materialized execution.
	ME
)

var modeNames = [...]string{"EP", "SP", "ME"}

// String renders the mode; out-of-range values render as "Mode(n)"
// instead of panicking.
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("Mode(%d)", int(m))
	}
	return modeNames[m]
}

// Config configures a cluster.
type Config struct {
	// Nodes is the number of slave nodes (data holders).
	Nodes int
	// CoresPerNode is m, the per-node core budget for the scheduler.
	CoresPerNode int
	// Sockets emulates NUMA sockets per node.
	Sockets int
	// NetBytesPerSec limits each node's NIC (0 = unlimited).
	NetBytesPerSec float64
	// Mode selects EP / SP / ME.
	Mode Mode
	// FixedParallelism is the per-segment worker count in SP and ME
	// mode, and the initial parallelism in EP mode (default 1).
	FixedParallelism int
	// SchedTick is the EP scheduler period (default 20ms).
	SchedTick time.Duration
	// ExchangeBuffer bounds exchange inboxes in pipelined modes, in
	// blocks (default 128). ME mode always uses unbounded inboxes.
	ExchangeBuffer int
	// BlockSize is the storage block payload size (default 64 KB).
	BlockSize int
	// Faults injects faults into the cluster's fabric and worker pools.
	// Nil falls back to the process default (faults.Default()), which the
	// -faults CLI flag installs; use faults.New to attach a private
	// injector (tests schedule link severances and worker crashes on it).
	Faults *faults.Injector
	// Retry overrides the transports' reliable-send policy. Setting it
	// forces the reliable (ack + retransmit) protocol on even without an
	// injector; leave nil outside recovery tests.
	Retry *network.RetryPolicy
	// Wire tunes the TCP fabric (connection pool size, send window,
	// coalescing). Nil uses network.DefaultWireConfig; ignored by the
	// in-process fabric.
	Wire *network.WireConfig
	// MemoryPerNode caps the tracked working memory (hash tables, sort
	// buffers, parked worker state) of all concurrent queries on one
	// node, in bytes (0 = unlimited). Admission prepays an estimate
	// against it; operators reserve as they grow, and refused
	// reservations walk the degradation ladder — stop expanding pools,
	// shrink pools, and only then spill partitions to disk.
	MemoryPerNode int64
	// MemoryPerQuery caps one query's tracked memory per node
	// (0 = unlimited).
	MemoryPerQuery int64
	// SpillDir receives operator spill files (default os.TempDir()).
	SpillDir string
	// NodeLossGrace applies to distributed clusters (NewClusterDist):
	// when a distributed query fails with a transport symptom, it lingers
	// up to this long for the membership failure detector to attribute
	// the symptom to a node death, upgrading the error to the typed
	// NodeLostError. Set it a margin past the detector deadline;
	// 0 (default) returns the raw symptom immediately.
	NodeLossGrace time.Duration
	// StatsWait applies to distributed clusters: how long an analyzed
	// coordinated query waits for participants' telemetry snapshots
	// (shipped over the control plane at fragment end) before rendering
	// the analysis from whatever arrived. Participants finish no later
	// than the coordinator's own dataflow, so the wait only covers the
	// control-plane hop (default 2s).
	StatsWait time.Duration
	// PlanCacheSize bounds the cluster's LRU plan cache (normalized
	// SQL + catalog version -> compiled physical plan), consulted by
	// Run/RunContext/RunScoped and the prepared-statement path so
	// repeated statements skip parse+plan entirely. 0 means the
	// default (256); negative disables caching.
	PlanCacheSize int
	// FastPath enables the serial fast-path executor for small
	// gather-only plans (point lookups): eligible queries run on the
	// calling goroutine without exchanges, elastic pools or samplers.
	// Off by default — results are identical but the execution
	// machinery (and its telemetry) is bypassed, so serving stacks opt
	// in explicitly.
	FastPath bool
	// FastPathRows caps the total catalog-estimated scanned rows of a
	// fast-path query (default 65536); larger scans take the parallel
	// dataflow path.
	FastPathRows int64
	// RowExec forces row-at-a-time (tuple-per-tuple) expression
	// evaluation in filters, projections, join key computation and
	// aggregation, bypassing the vectorized batch kernels. The two paths
	// are semantically identical by construction; this escape hatch lets
	// the metamorphic tests diff them and serves as a fallback if a
	// kernel misbehaves. The CLAIMS_ROWEXEC environment variable (any
	// non-empty value) forces it on process-wide.
	RowExec bool
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 4
	}
	if c.Sockets <= 0 {
		c.Sockets = 1
	}
	if c.FixedParallelism <= 0 {
		c.FixedParallelism = 1
	}
	if c.SchedTick <= 0 {
		c.SchedTick = 20 * time.Millisecond
	}
	if c.ExchangeBuffer <= 0 {
		c.ExchangeBuffer = 128
	}
	if c.BlockSize <= 0 {
		c.BlockSize = block.DefaultSize
	}
	if c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	if c.StatsWait <= 0 {
		c.StatsWait = 2 * time.Second
	}
	if os.Getenv("CLAIMS_ROWEXEC") != "" {
		c.RowExec = true
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.FastPathRows <= 0 {
		c.FastPathRows = 65536
	}
}

// Cluster is an in-process cluster: data stores per slave node plus the
// exchange fabric. Create one, load tables, then Run queries — any
// number concurrently: exchanges are namespaced per query, and the
// cluster-resident schedulers plus the per-node core-lease pools
// arbitrate the shared core budget across all in-flight queries.
type Cluster struct {
	cfg    Config
	cat    *catalog.Catalog
	stores []*storage.Store
	fabric network.Fabric
	// faultInj is the resolved fault injector (Config.Faults or the
	// process default at construction time); nil when faults are off.
	faultInj *faults.Injector
	// tcpNodes holds the sockets of a TCP-backed cluster, for Close.
	tcpNodes map[int]*network.TCPNode
	// dist is the distributed-mode state (NewClusterDist): this process
	// is one data node of a multi-process cluster. Nil for the ordinary
	// all-in-one-process cluster.
	dist *distState

	// planCache holds compiled plans keyed on normalized SQL + catalog
	// version; shared by every execution entry point of the cluster.
	planCache *plan.Cache

	// leases[n] is node n's core-slot pool (slaves 0..Nodes-1 plus the
	// master at index Nodes), shared by every concurrent query.
	leases []*coreLease
	// memBudgets[n] is node n's memory budget root: every query's
	// per-node account is a child, so the sum of tracked operator state
	// on a node is bounded by Config.MemoryPerNode. The node scheduler
	// reads its Pressure each tick to drive the degradation watermarks.
	memBudgets []*block.Tracker
	// scheds[n] is node n's resident dynamic scheduler (EP mode). One
	// scheduler per node for the whole cluster lifetime: execs Attach
	// their segment handles on start and Detach on completion, so
	// Algorithm 1 arbitrates cores between queries exactly as it does
	// between segments of one query.
	scheds []*sched.NodeScheduler
	bus    *sched.MasterBus

	// The scheduler tick loop is refcounted: it runs only while at
	// least one EP query is in flight, so idle clusters (and the many
	// tests that never call Close) hold no background goroutine.
	schedMu   sync.Mutex
	schedRef  int
	schedStop chan struct{}
	schedDone chan struct{}
	// activeEP holds the scopes of in-flight EP queries; each tick's
	// measured overhead is charged to every active query's
	// sched.overhead_ns counter (the tick serves them all).
	activeEP map[*telemetry.Scope]struct{}

	closed atomic.Bool
}

// initShared builds the query-independent shared state: core-lease
// pools and resident schedulers for every node including the master.
func (c *Cluster) initShared() {
	size := c.cfg.PlanCacheSize
	if size < 0 {
		size = 0
	}
	c.planCache = plan.NewCache(size)
	c.bus = sched.NewMasterBus()
	c.activeEP = make(map[*telemetry.Scope]struct{})
	for i := 0; i <= c.cfg.Nodes; i++ {
		mb := block.NewBudget(fmt.Sprintf("node%d", i), c.cfg.MemoryPerNode)
		c.memBudgets = append(c.memBudgets, mb)
		c.leases = append(c.leases, newCoreLease(c.cfg.CoresPerNode))
		c.scheds = append(c.scheds, sched.NewNodeScheduler(i, sched.Config{
			Cores:       c.cfg.CoresPerNode,
			MemPressure: mb.Pressure,
		}, c.bus))
	}
}

// NodeMemory returns a node's tracked query working memory: the bytes
// currently charged, the high-water mark, and the configured budget
// (0 = unlimited). Node ids 0..Nodes-1 are slaves; Nodes is the master.
func (c *Cluster) NodeMemory(node int) (cur, peak, limit int64) {
	mb := c.memBudgets[node]
	return mb.Current(), mb.Peak(), mb.Limit()
}

// memPressureHigh reports whether a node is above the expansion
// watermark. Elective pool expansions are refused there — the first,
// cheapest rung of the degradation ladder — mirroring the resident
// scheduler's own gate so neither path can grow a pool into a node
// that is about to spill.
func (c *Cluster) memPressureHigh(node int) bool {
	return c.memBudgets[node].Pressure() >= 0.75
}

// resolveFaults picks the cluster's injector: an explicit Config.Faults
// wins, otherwise the process default installed by the -faults flag.
func (c *Config) resolveFaults() *faults.Injector {
	if c.Faults != nil {
		return c.Faults
	}
	return faults.Default()
}

// NewCluster creates a cluster with empty stores over the in-process
// exchange fabric (optionally bandwidth-limited via NetBytesPerSec).
func NewCluster(cfg Config, cat *catalog.Catalog) *Cluster {
	cfg.defaults()
	inj := cfg.resolveFaults()
	c := &Cluster{cfg: cfg, cat: cat, faultInj: inj,
		fabric: network.InProcFabric{
			T:      network.NewInProc(cfg.NetBytesPerSec),
			Faults: inj,
			Retry:  cfg.Retry,
		}}
	for i := 0; i < cfg.Nodes; i++ {
		c.stores = append(c.stores, storage.NewStore(cfg.Sockets))
	}
	c.initShared()
	return c
}

// NewClusterTCP creates a cluster whose exchanges run over real TCP
// sockets on loopback — one listener per node including the master —
// so every repartitioned block passes through the wire codec. Close the
// cluster to release the sockets.
func NewClusterTCP(cfg Config, cat *catalog.Catalog) (*Cluster, error) {
	cfg.defaults()
	inj := cfg.resolveFaults()
	nodes := make(map[int]*network.TCPNode)
	peers := make(map[int]string)
	for i := 0; i <= cfg.Nodes; i++ { // slaves + master
		n, err := network.NewTCPNode(i, "127.0.0.1:0", peers)
		if err != nil {
			for _, prev := range nodes {
				prev.Close()
			}
			return nil, err
		}
		n.SetFaults(inj)
		if cfg.Retry != nil {
			n.SetRetryPolicy(*cfg.Retry)
		}
		if cfg.Wire != nil {
			n.SetWireConfig(*cfg.Wire)
		}
		nodes[i] = n
		peers[i] = n.Addr()
	}
	// Every node now knows every address: register the full peer set so
	// the connection pools pre-dial here, off the query path, instead of
	// paying the first dial on the hot send path.
	for _, n := range nodes {
		for pid, paddr := range peers {
			n.SetPeer(pid, paddr)
		}
	}
	c := &Cluster{cfg: cfg, cat: cat, faultInj: inj,
		fabric:   network.NewTCPFabric(nodes),
		tcpNodes: nodes,
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.stores = append(c.stores, storage.NewStore(cfg.Sockets))
	}
	c.initShared()
	return c, nil
}

// Close shuts the cluster down: subsequent Run/Serve calls fail with
// ErrClosed, the resident scheduler loop (if running) is stopped, and a
// TCP-backed cluster's sockets are released. Closing twice is a no-op.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.schedMu.Lock()
	stop, done := c.schedStop, c.schedDone
	c.schedStop, c.schedDone = nil, nil
	c.schedMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	for _, n := range c.tcpNodes {
		n.Close()
	}
}

// UsedCores returns the number of leased core slots on a node — the
// workers holding a real core, across every in-flight query. It never
// exceeds Config.CoresPerNode by construction.
func (c *Cluster) UsedCores(node int) int { return c.leases[node].Used() }

// OversubscribedCores returns the node's outstanding core overdraft:
// mandatory workers (a segment's first, or SP/ME fixed parallelism)
// started beyond the core budget, explicitly accounted instead of
// silently double-booked.
func (c *Cluster) OversubscribedCores(node int) int {
	return c.leases[node].Oversubscribed()
}

// attachEP registers an EP query with the resident schedulers: every
// segment instance's adapter attaches to its node's scheduler, and the
// shared tick loop starts if this is the first in-flight EP query.
func (c *Cluster) attachEP(e *exec, adapters []*segAdapter) {
	for _, a := range adapters {
		c.scheds[a.inst.node].Attach(a)
	}
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	c.activeEP[e.scope] = struct{}{}
	c.schedRef++
	if c.schedRef == 1 && !c.closed.Load() {
		c.schedStop = make(chan struct{})
		c.schedDone = make(chan struct{})
		go c.schedLoop(c.schedStop, c.schedDone)
	}
}

// detachEP unregisters a completing EP query and stops the tick loop
// when no EP query remains in flight.
func (c *Cluster) detachEP(e *exec, adapters []*segAdapter) {
	for _, a := range adapters {
		c.scheds[a.inst.node].Detach(a)
	}
	c.schedMu.Lock()
	delete(c.activeEP, e.scope)
	c.schedRef--
	var stop, done chan struct{}
	if c.schedRef == 0 {
		stop, done = c.schedStop, c.schedDone
		c.schedStop, c.schedDone = nil, nil
	}
	c.schedMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// schedLoop drives every node's resident scheduler until the last EP
// query detaches (Table 5's "scheduling overhead" row measures the time
// spent inside Tick).
func (c *Cluster) schedLoop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(c.cfg.SchedTick)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			t0 := time.Now()
			for _, ns := range c.scheds {
				ns.Tick(now)
			}
			elapsed := time.Since(t0).Nanoseconds()
			c.schedMu.Lock()
			for sc := range c.activeEP {
				sc.Counter(telemetry.CtrSchedOverheadNs).Add(elapsed)
			}
			c.schedMu.Unlock()
		}
	}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Catalog returns the cluster catalog.
func (c *Cluster) Catalog() *catalog.Catalog { return c.cat }

// master returns the master node id (one past the slaves).
func (c *Cluster) master() int { return c.cfg.Nodes }

// TableLoader routes rows to slave nodes by the table's hash partition
// key, the distribution scheme of Section 5.1.
type TableLoader struct {
	table   *catalog.Table
	loaders []*storage.Loader
	keyEnc  *expr.KeyEncoder
	scratch []byte
	rows    int64
}

// NewTableLoader prepares loading for a registered table.
func (c *Cluster) NewTableLoader(name string) (*TableLoader, error) {
	tbl, err := c.cat.Lookup(name)
	if err != nil {
		return nil, err
	}
	tl := &TableLoader{
		table:   tbl,
		scratch: make([]byte, tbl.Schema.Stride()),
	}
	var keyExprs []expr.Expr
	for _, idx := range tbl.PartKey {
		keyExprs = append(keyExprs, expr.NewCol(idx, tbl.Schema.Cols[idx].Name))
	}
	tl.keyEnc = expr.NewKeyEncoder(keyExprs)
	// In distributed mode only the local node's store exists; the other
	// slots stay nil so the hash routing below still sees the full
	// cluster width and rows bound for remote partitions are dropped
	// locally (each process generates the full dataset deterministically
	// and keeps its own slice).
	for _, st := range c.stores {
		if st == nil {
			tl.loaders = append(tl.loaders, nil)
			continue
		}
		p := st.CreatePartition(name, tbl.Schema)
		tl.loaders = append(tl.loaders, storage.NewLoader(p, c.cfg.BlockSize))
	}
	return tl, nil
}

// Row returns a scratch record to fill; commit it with Add.
func (l *TableLoader) Row() []byte { return l.scratch }

// Add routes the filled scratch record to its node. The row count
// advances even when the destination partition lives in another process
// (nil loader): table statistics must reflect the CLUSTER-WIDE row
// count on every process, or the per-process plan compilations of one
// distributed query would diverge.
func (l *TableLoader) Add() {
	node := 0
	if len(l.loaders) > 1 {
		h := l.keyEnc.Hash(l.scratch, l.table.Schema)
		node = int(h % uint64(len(l.loaders)))
	}
	if ld := l.loaders[node]; ld != nil {
		copy(ld.Row(), l.scratch)
	}
	l.rows++
}

// Close seals all partitions and refreshes the table row statistics.
func (l *TableLoader) Close() {
	for _, ld := range l.loaders {
		if ld != nil {
			ld.Close()
		}
	}
	l.table.Stats.Rows = l.rows
}

// Result is a completed query's output.
type Result struct {
	Names  []string
	Schema *types.Schema
	Blocks []*block.Block
	Stats  ExecStats
	// Scope is the query's telemetry stream: the counters, gauges and
	// events Stats was derived from. Attach sinks before running (via
	// RunScoped/RunPlanScoped) to observe the live stream.
	Scope *telemetry.Scope
}

// NumRows returns the result cardinality.
func (r *Result) NumRows() int {
	n := 0
	for _, b := range r.Blocks {
		n += b.NumTuples()
	}
	return n
}

// Rows materializes the result as value rows, for display and tests.
func (r *Result) Rows() [][]types.Value {
	var out [][]types.Value
	for _, b := range r.Blocks {
		for i := 0; i < b.NumTuples(); i++ {
			row := make([]types.Value, r.Schema.NumCols())
			for c := range row {
				row[c] = b.Get(i, c)
			}
			out = append(out, row)
		}
	}
	return out
}

// ExecStats reports measured execution characteristics. It is a view
// computed from the query's telemetry scope (Result.Scope): duration
// from the scope clock, network traffic from the shared net.bytes
// counter, memory from the mem.bytes gauge peak, scheduling overhead
// from the sched.overhead_ns counter, and the trace from
// ParallelismSample events.
type ExecStats struct {
	// Duration is the wall-clock query response time.
	Duration time.Duration
	// PeakMemoryBytes is the high-water mark of materialized state:
	// exchange staging plus hash-table arenas across all nodes.
	PeakMemoryBytes int64
	// NetworkBytes counts bytes that crossed the emulated NICs.
	NetworkBytes int64
	// SchedOverhead is the cumulative time spent inside scheduler ticks.
	SchedOverhead time.Duration
	// Trace samples per-segment parallelism over time (EP mode).
	Trace []TraceSample
}

// TraceSample is one point of the parallelism timeline (Figure 10).
type TraceSample struct {
	At          time.Duration
	Parallelism map[string]int // segment name → workers (node 0 instance)
}

func (c *Cluster) store(node int) *storage.Store { return c.stores[node] }

func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{nodes: %d, cores: %d, mode: %s}",
		c.cfg.Nodes, c.cfg.CoresPerNode, c.cfg.Mode)
}
