package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/types"
)

// TestModesAgreeOnRandomQueries is the DESIGN.md result-equivalence
// invariant: every query must return the same result set under EP, SP
// and ME, for any node count and parallelism. Queries are drawn from
// templates whose constants are randomized per trial.
func TestModesAgreeOnRandomQueries(t *testing.T) {
	templates := []func(r *rand.Rand) string{
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT count(*) FROM trades WHERE trade_volume < %d",
				r.Intn(900)+50)
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT sec_code, sum(trade_volume), count(*)
				FROM trades WHERE acct_id < %d GROUP BY sec_code`, r.Intn(400)+50)
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT acct_id, min(trade_volume), max(trade_volume)
				FROM trades GROUP BY acct_id HAVING count(*) > %d`, r.Intn(10)+5)
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT T.sec_code, count(*)
				FROM trades T, securities S
				WHERE T.acct_id = S.acct_id AND S.entry_volume < %d
				GROUP BY T.sec_code`, r.Intn(800)+100)
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT acct_id, sum(trade_volume) AS v FROM trades
				GROUP BY acct_id ORDER BY v DESC LIMIT %d`, r.Intn(15)+5)
		},
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		q := templates[trial%len(templates)](rng)
		var fingerprints []string
		for ci, cfg := range []struct {
			mode  Mode
			nodes int
			par   int
		}{
			{EP, 3, 1},
			{SP, 2, 3},
			{ME, 1, 2},
		} {
			c, _ := buildTestCluster(t, cfg.mode, cfg.nodes)
			res, err := c.Run(q)
			if err != nil {
				t.Fatalf("trial %d cfg %d (%v): %v\nquery: %s", trial, ci, cfg.mode, err, q)
			}
			fingerprints = append(fingerprints, fingerprint(res))
		}
		if fingerprints[0] != fingerprints[1] || fingerprints[1] != fingerprints[2] {
			t.Fatalf("trial %d: modes disagree on %q\nEP: %.120s\nSP: %.120s\nME: %.120s",
				trial, q, fingerprints[0], fingerprints[1], fingerprints[2])
		}
	}
}

// fingerprint renders a result as an order-insensitive canonical string
// (ORDER BY queries stay order-sensitive through the sorted rows being
// equal anyway).
func fingerprint(res *Result) string {
	rows := res.Rows()
	lines := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			// Canonicalize floats to tolerate summation-order jitter.
			if v.Kind == types.Float64 && !v.Null {
				parts[j] = fmt.Sprintf("%.6g", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		lines[i] = strings.Join(parts, ",")
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}
