package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestOverlappingRuns is the regression test for the fixed
// resultExchangeID collision: two Run calls overlapping on one
// in-process cluster must both return correct results. Before
// exchanges were keyed by (query id, exchange id), the queries' result
// collectors (and every plan exchange) shared ids and crossed streams.
func TestOverlappingRuns(t *testing.T) {
	c := buildFaultCluster(t, faultBaseConfig(EP, 2), false)
	want := make([]string, len(metamorphicQueries))
	for i, q := range metamorphicQueries {
		res, err := c.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprint(res)
	}

	var wg sync.WaitGroup
	for i, q := range metamorphicQueries {
		for rep := 0; rep < 2; rep++ {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				res, err := c.Run(q)
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				if got := fingerprint(res); got != want[i] {
					t.Errorf("query %d diverged when overlapping\nwant %.200s\ngot  %.200s",
						i, want[i], got)
				}
			}(i, q)
		}
	}
	wg.Wait()
}

// TestUsedCoresBounded asserts the acceptance criterion: with many
// queries in flight, no node's leased core count ever exceeds
// CoresPerNode — the per-query `% CoresPerNode` wrap used to let
// concurrent queries double-book cores invisibly.
func TestUsedCoresBounded(t *testing.T) {
	cfg := faultBaseConfig(EP, 2)
	c := buildFaultCluster(t, cfg, false)

	stop := make(chan struct{})
	violation := make(chan string, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			for n := 0; n <= cfg.Nodes; n++ {
				if used := c.UsedCores(n); used > cfg.CoresPerNode {
					select {
					case violation <- fmt.Sprintf("node %d: %d leased cores, budget %d", n, used, cfg.CoresPerNode):
					default:
					}
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for rep := 0; rep < 3; rep++ {
		for i, q := range metamorphicQueries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				if _, err := c.Run(q); err != nil {
					t.Errorf("query %d: %v", i, err)
				}
			}(i, q)
		}
	}
	wg.Wait()
	close(stop)
	select {
	case v := <-violation:
		t.Fatalf("core budget exceeded: %s", v)
	default:
	}
	// After the drain every lease must be back in the pool.
	for n := 0; n <= cfg.Nodes; n++ {
		if used := c.UsedCores(n); used != 0 {
			t.Errorf("node %d: %d cores still leased after drain", n, used)
		}
		if over := c.OversubscribedCores(n); over != 0 {
			t.Errorf("node %d: %d oversubscribed workers still accounted after drain", n, over)
		}
	}
}

// TestConcurrentMixedStress is the multi-query stress harness: at least
// 8 queries in flight at once on one cluster, across both fabrics and
// both pipelined modes, plus one seeded fault schedule — every result
// must match its solo run. CI runs this under -race (the mq-smoke job).
func TestConcurrentMixedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress mix is slow under -short")
	}
	oracle := noFaultFingerprints(t)

	type variant struct {
		name   string
		mode   Mode
		tcp    bool
		faults string
	}
	variants := []variant{
		{"inproc-EP", EP, false, ""},
		{"inproc-SP", SP, false, ""},
		{"tcp-EP", EP, true, ""},
		{"tcp-SP", SP, true, ""},
		{"inproc-EP-faults", EP, false, "drop=0.02,dup=0.01,seed=11"},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := faultBaseConfig(v.mode, 2)
			if v.faults != "" {
				fc, err := faults.Parse(v.faults)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults = faults.New(fc)
				cfg.Retry = &fastFaultRetry
			}
			c := buildFaultCluster(t, cfg, v.tcp)

			// 9 concurrent queries: three instances of each of the three
			// metamorphic shapes (scan/filter, repartitioned agg, join).
			var wg sync.WaitGroup
			for rep := 0; rep < 3; rep++ {
				for i, q := range metamorphicQueries {
					wg.Add(1)
					go func(i int, q string) {
						defer wg.Done()
						res, err := c.Run(q)
						if err != nil {
							t.Errorf("query %d: %v", i, err)
							return
						}
						if got := fingerprint(res); got != oracle[i] {
							t.Errorf("query %d diverged under concurrency (%s)\nwant %.200s\ngot  %.200s",
								i, v.name, oracle[i], got)
						}
					}(i, q)
				}
			}
			wg.Wait()
		})
	}
}

// TestRunAfterClose: Close rejects later queries with the typed error
// instead of racing a torn-down fabric.
func TestRunAfterClose(t *testing.T) {
	c := buildFaultCluster(t, faultBaseConfig(EP, 2), false)
	if _, err := c.Run(metamorphicQueries[0]); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Run(metamorphicQueries[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: err = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

// TestRunContextCancel: cancelling the context tears the query down
// through exec.fail and surfaces the context error.
func TestRunContextCancel(t *testing.T) {
	c := buildFaultCluster(t, faultBaseConfig(EP, 2), false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the dataflow starts: must not hang
	if _, err := c.RunContext(ctx, metamorphicQueries[2]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A live cancellation mid-flight must also unwind promptly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel2()
	if _, err := c.RunContext(ctx2, metamorphicQueries[2]); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded or success", err)
		}
	}
	// The cluster stays healthy for later queries.
	if _, err := c.Run(metamorphicQueries[0]); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}
