package engine

import (
	"strings"

	"repro/internal/plan"
)

// estimateQueryMemory derives a coarse working-memory estimate for a
// plan from catalog statistics: how many bytes of operator state (hash
// tables, sort buffers) the query is expected to pin per slave node and
// on the master. Admission prepays the estimate against the node
// budgets, so a query that cannot possibly fit is refused up front with
// a retriable error instead of thrashing every resident query
// mid-flight. The numbers only gate admission — enforcement is the
// per-operator reservations — so rough heuristics (filters keep a
// third, aggs without stats produce a quarter of their input) are fine.
func (c *Cluster) estimateQueryMemory(p *plan.Plan) (perSlave, master int64) {
	es := &memEstimator{c: c, segRows: map[int]int64{}, prodOf: map[int]*plan.Segment{}}
	segByID := map[int]*plan.Segment{}
	for _, s := range p.Segments {
		segByID[s.ID] = s
	}
	for _, ex := range p.Exchanges {
		es.prodOf[ex.ID] = segByID[ex.Producer]
	}
	for _, seg := range p.Segments {
		var segBytes int64
		plan.Walk(seg.Root, func(op plan.PhysOp) {
			segBytes += es.opBytes(op)
		})
		if seg.OnMaster {
			master += segBytes
		} else if c.cfg.Nodes > 0 {
			// Slave segments split their (cluster-total) state evenly
			// across the hash-partitioned nodes.
			perSlave += segBytes / int64(c.cfg.Nodes)
		}
	}
	return perSlave, master
}

type memEstimator struct {
	c       *Cluster
	segRows map[int]int64
	prodOf  map[int]*plan.Segment
}

// rows estimates an operator's cluster-total output cardinality.
func (es *memEstimator) rows(op plan.PhysOp) int64 {
	switch n := op.(type) {
	case *plan.PScan:
		r := n.Table.Stats.Rows
		if n.Pred != nil {
			r /= 3
		}
		return r
	case *plan.PFilter:
		return es.rows(n.Child) / 3
	case *plan.PProject:
		return es.rows(n.Child)
	case *plan.PHashJoin:
		b, p := es.rows(n.Build), es.rows(n.Probe)
		if b > p {
			return b
		}
		return p
	case *plan.PHashAgg:
		return es.groups(n)
	case *plan.PSort:
		return es.rows(n.Child)
	case *plan.PTopN:
		return n.N
	case *plan.PLimit:
		return n.N
	case *plan.PMerger:
		// Network input: the producer segment's root cardinality.
		if prod := es.prodOf[n.Exchange]; prod != nil {
			if r, ok := es.segRows[prod.ID]; ok {
				return r
			}
			es.segRows[prod.ID] = 0 // cycle guard; plans are acyclic
			r := es.rows(prod.Root)
			es.segRows[prod.ID] = r
			return r
		}
	}
	return 0
}

// groups estimates an aggregation's distinct group count: the NDV of
// the bare key column when the catalog knows it, otherwise a quarter of
// the input.
func (es *memEstimator) groups(n *plan.PHashAgg) int64 {
	in := es.rows(n.Child)
	var ndv int64 = 1
	known := false
	for _, key := range n.KeyNames {
		bare := key
		if i := strings.LastIndexByte(bare, '.'); i >= 0 {
			bare = bare[i+1:]
		}
		for _, name := range es.c.cat.Names() {
			tbl, err := es.c.cat.Lookup(name)
			if err != nil {
				continue
			}
			if cs, ok := tbl.Stats.Cols[bare]; ok && cs.NDV > 0 {
				ndv *= cs.NDV
				known = true
				break
			}
		}
	}
	g := in / 4
	if known {
		g = ndv
	}
	if g > in {
		g = in
	}
	if g < 1 {
		g = 1
	}
	return g
}

// opBytes estimates the working memory an operator pins, cluster-wide.
// Stateless operators (scans, filters, projections, mergers) stream and
// pin nothing beyond their blocks.
func (es *memEstimator) opBytes(op plan.PhysOp) int64 {
	switch n := op.(type) {
	case *plan.PHashJoin:
		// Build rows in fixed-stride pages plus the offset table.
		return es.rows(n.Build) * int64(n.Build.Schema().Stride()) * 2
	case *plan.PHashAgg:
		per := int64(112 + 56*len(n.Specs) + 32*len(n.Keys))
		return es.groups(n) * per
	case *plan.PSort:
		// The sort collects its whole input plus row references.
		return es.rows(n.Child) * int64(n.Child.Schema().Stride()+48)
	case *plan.PTopN:
		return n.N * int64(n.Child.Schema().Stride()+48)
	}
	return 0
}
