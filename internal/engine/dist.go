package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/network"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// ErrNodeLost is the sentinel matched by errors.Is when a distributed
// query failed because a participating node died (crashed, was killed,
// or was partitioned away) mid-flight. The concrete error in the chain
// is *NodeLostError, which names the node.
var ErrNodeLost = errors.New("engine: node lost")

// NodeLostError is the typed failure of a distributed query whose
// participant died mid-flight. It is the authoritative verdict from the
// membership plane's failure detector, and it overrides whatever
// transport-level symptom (reset connection, aborted exchange, send
// deadline) the dataflow happened to trip on first.
type NodeLostError struct {
	// Node is the data-node id the failure detector declared dead.
	Node int
}

func (e *NodeLostError) Error() string {
	return fmt.Sprintf("engine: node %d lost mid-query", e.Node)
}

// Unwrap makes errors.Is(err, ErrNodeLost) match.
func (e *NodeLostError) Unwrap() error { return ErrNodeLost }

// ExecSpec is the control-plane description of one distributed query:
// what to run, under which cluster-unique id, who coordinates (hosting
// the master segments and collecting the result), and which data nodes
// participate. The coordinator builds one, runs RunCoordinated with it
// locally, and broadcasts it verbatim to every other participant, which
// runs RunParticipant. Because plan compilation is deterministic over
// slices (never map iteration) and every process agreed on the catalog
// at join time, all participants derive the identical plan — same
// segment ids, same exchange ids — and each instantiates only the
// segment instances placed on its own node.
type ExecSpec struct {
	// QID is the cluster-unique query id (from the coordinator's
	// NextQueryID); it namespaces every exchange of the dataflow.
	QID int
	// SQL is the query text, compiled independently by each participant.
	SQL string
	// Coordinator is the data-node id of the coordinating process. It
	// doubles as the query's master node: master-resident segments and
	// the result collector live there, so a per-cluster master process
	// is not needed and any node can coordinate.
	Coordinator int
	// DataNodes are the participating data nodes in ascending order —
	// the alive subset of the full partition map at submission time.
	// Partitions of dead nodes are not scanned (degraded coverage until
	// the node rejoins); the list must be identical on every
	// participant, as it determines exchange instance indexing.
	DataNodes []int
	// Analyze requests the cluster-wide observability plane: every
	// participant runs its fragment span-enabled with per-operator
	// instrumentation and ships a serialized scope snapshot back to the
	// coordinator at fragment end (RunParticipantStats → control plane →
	// DeliverStats), so the coordinator's EXPLAIN ANALYZE and Chrome
	// trace describe all nodes, not just its own.
	Analyze bool
	// TraceID is the coordinator-chosen trace-context id propagated to
	// every participant; snapshots echo it so the control plane can
	// correlate them with the originating query across processes.
	TraceID string
}

// distState is the extra state of a distributed-mode cluster: one
// process among several, owning one data node's partition of every
// table and exchanging blocks with its peers over the wire.
type distState struct {
	local  int // this process's data node id
	fabric *network.DistFabric

	mu       sync.Mutex
	inflight map[int]*exec // qid → running query (this process's side)
	lost     map[int]bool  // node id → declared dead and not yet back

	// statsMu guards the per-query snapshot channels participants'
	// shipped telemetry arrives on. Channels are created by whichever
	// side touches a qid first (delivery can race the coordinator's
	// collection), so no registration ordering is required; statsOrder
	// bounds the map against stray deliveries for dead coordinators.
	statsMu    sync.Mutex
	stats      map[int]chan *telemetry.ScopeSnapshot
	statsOrder []int
}

// maxStatsPerQuery bounds one query's snapshot channel; a cluster never
// has more participants than nodes, and excess deliveries are dropped
// rather than blocking the control plane.
const maxStatsPerQuery = 64

// maxStatsQueries bounds the number of per-query snapshot channels kept
// at once; the oldest is evicted so stray deliveries (a coordinator that
// died before collecting) cannot grow the map forever.
const maxStatsQueries = 128

// statsCh returns the query's snapshot channel, creating it on first
// touch from either side.
func (d *distState) statsCh(qid int) chan *telemetry.ScopeSnapshot {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	if d.stats == nil {
		d.stats = make(map[int]chan *telemetry.ScopeSnapshot)
	}
	ch, ok := d.stats[qid]
	if !ok {
		ch = make(chan *telemetry.ScopeSnapshot, maxStatsPerQuery)
		d.stats[qid] = ch
		d.statsOrder = append(d.statsOrder, qid)
		if len(d.statsOrder) > maxStatsQueries {
			evict := d.statsOrder[0]
			d.statsOrder = d.statsOrder[1:]
			delete(d.stats, evict)
		}
	}
	return ch
}

// dropStats releases a query's snapshot channel after collection.
func (d *distState) dropStats(qid int) {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	delete(d.stats, qid)
	for i, id := range d.statsOrder {
		if id == qid {
			d.statsOrder = append(d.statsOrder[:i], d.statsOrder[i+1:]...)
			break
		}
	}
}

// NewClusterDist creates one process's slice of a multi-process
// cluster: cfg.Nodes data nodes exist cluster-wide, but only node's id
// is backed by a local store — the other entries stay nil and their
// partitions live in peer processes. The transport node's peer table is
// expected to be maintained by the membership plane (SetPeer on join,
// DropPeer on death); the cluster closes the node on Close.
//
// There is no dedicated master process: each query's coordinator hosts
// its master segments and result collector (ExecSpec.Coordinator).
func NewClusterDist(cfg Config, cat *catalog.Catalog, node *network.TCPNode) (*Cluster, error) {
	cfg.defaults()
	if node.ID() < 0 || node.ID() >= cfg.Nodes {
		return nil, fmt.Errorf("engine: dist node id %d outside [0,%d)", node.ID(), cfg.Nodes)
	}
	inj := cfg.resolveFaults()
	node.SetFaults(inj)
	if cfg.Retry != nil {
		node.SetRetryPolicy(*cfg.Retry)
	}
	df := network.NewDistFabric(node)
	c := &Cluster{
		cfg: cfg, cat: cat, faultInj: inj,
		fabric:   df,
		tcpNodes: map[int]*network.TCPNode{node.ID(): node},
		dist: &distState{
			local:    node.ID(),
			fabric:   df,
			inflight: make(map[int]*exec),
			lost:     make(map[int]bool),
		},
	}
	c.stores = make([]*storage.Store, cfg.Nodes)
	c.stores[node.ID()] = storage.NewStore(cfg.Sockets)
	c.initShared()
	return c, nil
}

// LocalNode returns the data node this process owns in distributed
// mode, or -1 for an all-in-one-process cluster.
func (c *Cluster) LocalNode() int {
	if c.dist == nil {
		return -1
	}
	return c.dist.local
}

// NextQueryID allocates a query id for a new coordinated query. In
// distributed mode ids must be unique across every process that can
// coordinate, so the low byte carries the local node id (+1, so a
// distributed id is never mistaken for a pre-dist plain sequence
// number) under a per-process sequence. Ids stay below
// network.ReservedQueryIDBase by construction, so they can never
// collide with out-of-band tool dataflows (the claims-node mesh
// exerciser) that share the transport.
func (c *Cluster) NextQueryID() int {
	seq := querySeq.Add(1)
	if c.dist == nil {
		return int(seq)
	}
	return int(seq%(1<<21))<<8 | (c.dist.local + 1)
}

// RunCoordinated executes a distributed query from the coordinator
// side: compile spec.SQL, host the master segments and the result
// collector, run the locally-placed data segments, and return the
// assembled result. The caller must have broadcast the same spec to
// every other node in spec.DataNodes (RunParticipant) — the dataflow
// completes only when all sides run.
func (c *Cluster) RunCoordinated(ctx context.Context, spec ExecSpec, sc *telemetry.Scope) (*Result, error) {
	if c.dist == nil {
		return nil, fmt.Errorf("engine: RunCoordinated on a non-distributed cluster")
	}
	if spec.Coordinator != c.dist.local {
		return nil, fmt.Errorf("engine: spec names node %d as coordinator, this is node %d",
			spec.Coordinator, c.dist.local)
	}
	p, err := plan.Compile(spec.SQL, c.cat)
	if err != nil {
		return nil, err
	}
	if sc == nil {
		sc = newQueryScope()
	}
	return c.runPlanOpts(ctx, p, sc, spec.SQL, nil, specOpts(spec, c.dist.local))
}

// RunParticipant executes this process's share of a distributed query
// coordinated elsewhere: compile the same SQL, instantiate the segment
// instances placed on the local node, stream blocks to the wire, and
// return when the local side has drained. The result flows to the
// coordinator; participants return only an error.
func (c *Cluster) RunParticipant(ctx context.Context, spec ExecSpec) error {
	if c.dist == nil {
		return fmt.Errorf("engine: RunParticipant on a non-distributed cluster")
	}
	p, err := plan.Compile(spec.SQL, c.cat)
	if err != nil {
		return err
	}
	_, err = c.runPlanOpts(ctx, p, newQueryScope(), spec.SQL, nil, specOpts(spec, c.dist.local))
	return err
}

// RunParticipantStats is RunParticipant for an analyzed query: the
// fragment runs under a span-enabled scope with per-operator
// instrumentation, and the scope is serialized into a snapshot —
// counters, gauges with peaks, histograms, spans stamped with this
// node's id, per-exchange traffic folded from BlockSent events — for
// the control plane to ship back to the coordinator (DeliverStats on
// the coordinating process).
func (c *Cluster) RunParticipantStats(ctx context.Context, spec ExecSpec) (*telemetry.ScopeSnapshot, error) {
	if c.dist == nil {
		return nil, fmt.Errorf("engine: RunParticipantStats on a non-distributed cluster")
	}
	p, err := plan.Compile(spec.SQL, c.cat)
	if err != nil {
		return nil, err
	}
	sc := newQueryScope()
	sc.EnableSpans() // turns on per-operator instrumentation in runPlanOpts
	spanSink := telemetry.NewMemSink(telemetry.KindSpan)
	sentSink := telemetry.NewMemSink(telemetry.KindBlockSent)
	sc.Attach(spanSink)
	sc.Attach(sentSink)
	if _, err := c.runPlanOpts(ctx, p, sc, spec.SQL, nil, specOpts(spec, c.dist.local)); err != nil {
		return nil, err
	}
	snap := sc.Snapshot(c.dist.local)
	snap.TraceID = spec.TraceID
	snap.AddSpans(spanSink.Events())
	foldBlockSent(snap, sentSink.Events())
	return snap, nil
}

// foldBlockSent folds a fragment's cross-node BlockSent events into a
// snapshot's per-exchange counters (ex.<id>.rows/blocks/bytes), so the
// coordinator can attribute exchange traffic — and compute skew — per
// producing node. Scopes never write these counter names directly;
// they exist only in snapshots, which keeps the merge double-count-free.
func foldBlockSent(snap *telemetry.ScopeSnapshot, evs []telemetry.Event) {
	if snap.Counters == nil {
		snap.Counters = make(map[string]int64)
	}
	for _, ev := range evs {
		bs, ok := ev.Rec.(telemetry.BlockSent)
		if !ok {
			continue
		}
		snap.Counters[telemetry.ExCtr(bs.Exchange, "rows")] += int64(bs.Tuples)
		snap.Counters[telemetry.ExCtr(bs.Exchange, "blocks")]++
		snap.Counters[telemetry.ExCtr(bs.Exchange, "bytes")] += int64(bs.Bytes)
	}
}

// DeliverStats hands a participant's shipped snapshot to the
// coordinator-side collector — the control plane calls it on the
// coordinating process when a /stats request arrives. Reports whether
// the snapshot was accepted (a full or evicted channel drops it; the
// analysis then renders without that node rather than blocking).
func (c *Cluster) DeliverStats(qid int, snap *telemetry.ScopeSnapshot) bool {
	if c.dist == nil || snap == nil {
		return false
	}
	select {
	case c.dist.statsCh(qid) <- snap:
		return true
	default:
		return false
	}
}

// RunCoordinatedAnalyze is RunCoordinated with the cluster observability
// plane on: the coordinator's fragment is instrumented, participants'
// snapshots (shipped by the control plane via DeliverStats) are merged
// into the query scope, and the returned Analysis renders per-operator
// stats per node plus per-exchange skew. The caller must broadcast the
// same spec — with Analyze set — to every other participant.
func (c *Cluster) RunCoordinatedAnalyze(ctx context.Context, spec ExecSpec, sc *telemetry.Scope) (*Result, *Analysis, error) {
	if c.dist == nil {
		return nil, nil, fmt.Errorf("engine: RunCoordinatedAnalyze on a non-distributed cluster")
	}
	if spec.Coordinator != c.dist.local {
		return nil, nil, fmt.Errorf("engine: spec names node %d as coordinator, this is node %d",
			spec.Coordinator, c.dist.local)
	}
	p, err := plan.Compile(spec.SQL, c.cat)
	if err != nil {
		return nil, nil, err
	}
	if sc == nil {
		sc = newQueryScope()
	}
	az := &analyzeState{}
	res, err := c.runPlanOpts(ctx, p, sc, spec.SQL, az, specOpts(spec, c.dist.local))
	if err != nil {
		return nil, nil, err
	}
	return res, az.an, nil
}

// specOpts lowers a control-plane spec into the exec placement options.
func specOpts(spec ExecSpec, local int) *runOpts {
	return &runOpts{
		qid:       spec.QID,
		master:    spec.Coordinator,
		dataNodes: spec.DataNodes,
		local:     local,
	}
}

// gatherDistStats completes an analyzed distributed query's telemetry:
// snapshot the coordinator's own scope first (pre-merge, so the local
// share is attributable), then wait up to Config.StatsWait for every
// remote participant's shipped snapshot, merging each into the query
// scope (counters add, gauge peaks accumulate, histograms fold) and
// replaying its spans shifted onto the coordinator's timeline. The
// per-node snapshots land in the analyzeState for skew and per-node
// rendering. Missing snapshots (slow control plane, dropped delivery)
// degrade the analysis to the nodes that reported, never fail the query.
func (e *exec) gatherDistStats(az *analyzeState) {
	local := e.scope.Snapshot(e.local)
	if az.sent != nil {
		foldBlockSent(local, az.sent.Events())
	}
	perNode := []*telemetry.ScopeSnapshot{local}
	expected := 0
	for _, n := range e.dataNodes {
		if n != e.local {
			expected++
		}
	}
	if expected > 0 {
		ch := e.c.dist.statsCh(e.qid)
		deadline := time.NewTimer(e.c.cfg.StatsWait)
		defer deadline.Stop()
	collect:
		for len(perNode)-1 < expected {
			select {
			case snap := <-ch:
				perNode = append(perNode, snap)
			case <-deadline.C:
				break collect
			}
		}
	}
	e.c.dist.dropStats(e.qid)
	for _, snap := range perNode[1:] {
		e.scope.MergeSnapshot(snap)
		e.scope.ReplaySpans(snap)
	}
	az.perNode = perNode
}

// NodeLost is the membership plane's death notification: the failure
// detector declared node dead. Every in-flight query that node
// participates in is torn down with the typed NodeLostError — which
// overrides any transport symptom the teardown races with — and the
// node's address is dropped from the transport so new dataflows fail
// fast instead of dialing a corpse. The node stays on the lost list
// until NodeRestored, closing the race where a query registers between
// the death and its own first send.
func (c *Cluster) NodeLost(node int) {
	if c.dist == nil || node == c.dist.local {
		return
	}
	d := c.dist
	d.mu.Lock()
	d.lost[node] = true
	var victims []*exec
	for _, e := range d.inflight {
		if e.usesNode(node) {
			victims = append(victims, e)
		}
	}
	d.mu.Unlock()
	d.fabric.Node().DropPeer(node)
	for _, e := range victims {
		e.failWithNodeLost(node)
	}
}

// NodeRestored is the membership plane's rejoin notification: the node
// is alive again at addr (possibly a fresh ephemeral port), re-admitted
// to the transport's peer table and cleared from the lost list so new
// queries may fan out to it.
func (c *Cluster) NodeRestored(node int, addr string) {
	if c.dist == nil || node == c.dist.local {
		return
	}
	d := c.dist
	d.mu.Lock()
	delete(d.lost, node)
	d.mu.Unlock()
	d.fabric.Node().SetPeer(node, addr)
}

// FailQuery aborts one in-flight distributed query by id — the /abort
// control-plane path, used by a coordinator to tear down participant
// sides after its own side failed. Reports whether the query was found.
func (c *Cluster) FailQuery(qid int, err error) bool {
	if c.dist == nil {
		return false
	}
	c.dist.mu.Lock()
	e := c.dist.inflight[qid]
	c.dist.mu.Unlock()
	if e == nil {
		return false
	}
	e.fail(err)
	return true
}

// OpenExchanges reports the transport-layer exchange registrations
// still live in this process — inboxes, stream reassembly state, abort
// markers. A quiesced cluster must report zero: every query's deferred
// Release drops its registrations, and leaks here are what the
// clustertest harness's teardown assertions catch.
func (c *Cluster) OpenExchanges() int {
	n := 0
	for _, tn := range c.tcpNodes {
		n += tn.OpenExchanges()
	}
	return n
}

// register enrolls a fully-wired exec in the inflight table, unless one
// of its participants is already on the lost list — then the query
// fails immediately with the same typed error a mid-flight death would
// produce, closing the window between a death notification and this
// query's registration.
func (d *distState) register(e *exec) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, n := range e.dataNodes {
		if d.lost[n] {
			return &NodeLostError{Node: n}
		}
	}
	if d.lost[e.master] {
		return &NodeLostError{Node: e.master}
	}
	d.inflight[e.qid] = e
	return nil
}

func (d *distState) unregister(qid int) {
	d.mu.Lock()
	delete(d.inflight, qid)
	d.mu.Unlock()
}

// usesNode reports whether the query fans out to the given node.
func (e *exec) usesNode(node int) bool {
	if node == e.master {
		return true
	}
	for _, n := range e.dataNodes {
		if n == node {
			return true
		}
	}
	return false
}

// failWithNodeLost tears the query down under the failure detector's
// verdict. Unlike ordinary fail() — first error wins — the NodeLost
// verdict OVERRIDES a previously recorded error: when a peer dies, the
// dataflow usually trips on a transport symptom (reset connection,
// aborted exchange) a beat before the detector's deadline fires, and
// surfacing the symptom would hide the cause. The first NodeLost
// verdict sticks.
func (e *exec) failWithNodeLost(node int) {
	nl := &NodeLostError{Node: node}
	e.fail(nl) // no-op if teardown already ran
	e.failMu.Lock()
	if _, already := e.failErr.(*NodeLostError); !already {
		e.failErr = nl
	}
	e.failMu.Unlock()
}

// resolveDistError post-processes a distributed query's failure. If the
// error is already the detector's verdict it is final. Otherwise the
// query lingers up to the configured grace, giving the failure detector
// time to attribute a transport symptom to a node death — the detector
// deadline is typically a few hundred milliseconds behind the first
// connection reset when a process is killed outright. Without a grace
// (the default) the symptom error returns as-is.
func (e *exec) resolveDistError(err error) error {
	if errors.Is(err, ErrNodeLost) {
		return e.err()
	}
	grace := e.c.cfg.NodeLossGrace
	if grace <= 0 {
		return err
	}
	deadline := time.Now().Add(grace)
	for {
		if cur := e.err(); cur != nil && errors.Is(cur, ErrNodeLost) {
			return cur
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
}
