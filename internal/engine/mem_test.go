package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/telemetry"
	"repro/internal/types"
)

// buildMemCluster creates a cluster with one wide fact table whose
// group-by working set is large relative to the test budgets.
func buildMemCluster(t *testing.T, nodes int, cfg Config) *Cluster {
	t.Helper()
	cat := catalog.New(nodes)
	sch := types.NewSchema(
		types.Col("k", types.Int64),
		types.Col("g", types.Int64),
		types.Col("v", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "facts", Schema: sch, PartKey: []int{0},
		Stats: catalog.TableStats{Cols: map[string]catalog.ColStats{
			"k": {NDV: 20000}, "g": {NDV: 4000},
		}}})
	cfg.Nodes = nodes
	if cfg.CoresPerNode == 0 {
		cfg.CoresPerNode = 2
	}
	c := NewCluster(cfg, cat)
	tl, err := c.NewTableLoader("facts")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		r := tl.Row()
		types.PutValue(r, sch, 0, types.IntVal(int64(i)))
		types.PutValue(r, sch, 1, types.IntVal(int64(rng.Intn(4000))))
		types.PutValue(r, sch, 2, types.FloatVal(float64(i%100)))
		tl.Add()
	}
	tl.Close()
	return c
}

// TestMemoryBudgetSpillEquivalence runs a wide aggregation twice: once
// unconstrained to learn the peak, once with half that budget per node.
// The constrained run must finish via the shrink-then-spill ladder and
// produce identical results, with its tracked bytes inside the budget.
func TestMemoryBudgetSpillEquivalence(t *testing.T) {
	q := `SELECT k, sum(v) FROM facts GROUP BY k`

	free := buildMemCluster(t, 2, Config{Mode: EP, SpillDir: t.TempDir()})
	resFree, err := free.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(resFree)
	var peak int64
	for i := 0; i <= 2; i++ {
		_, pk, _ := free.NodeMemory(i)
		if pk > peak {
			peak = pk
		}
	}
	if peak == 0 {
		t.Fatal("unconstrained run tracked no memory")
	}

	budget := peak / 2
	tight := buildMemCluster(t, 2, Config{
		Mode: EP, MemoryPerNode: budget, SpillDir: t.TempDir(),
	})
	resTight, err := tight.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(resTight); got != want {
		t.Fatal("constrained run's results differ from the unconstrained run")
	}
	if n := resTight.Scope.Counter(telemetry.CtrSpillEvents).Load(); n == 0 {
		t.Fatal("constrained run recorded no spill events")
	}
	// The hard Reserve path never exceeds the budget (asserted by the
	// block-level race test); engine-level peaks may overshoot by the
	// documented soft paths (spill-mode reabsorption, private-table
	// flushes into spilling shards), which are bounded and small.
	slop := budget / 8
	for i := 0; i <= 2; i++ {
		_, pk, _ := tight.NodeMemory(i)
		if pk > budget+slop {
			t.Fatalf("node %d tracked peak %d exceeds budget %d beyond soft slop", i, pk, budget)
		}
	}
}

// TestMemoryAdmissionRefusal fills a node's budget and checks that a
// new query is refused with the typed, retriable error — and admitted
// again once the pressure is gone.
func TestMemoryAdmissionRefusal(t *testing.T) {
	c := buildMemCluster(t, 2, Config{
		Mode: EP, MemoryPerNode: 1 << 20, SpillDir: t.TempDir(),
	})
	hog := c.memBudgets[0].Sub("hog")
	if err := hog.Reserve(1 << 20); err != nil {
		t.Fatal(err)
	}
	_, err := c.Run(`SELECT k, sum(v) FROM facts GROUP BY k`)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("expected ErrMemoryBudget, got %v", err)
	}
	hog.Drop()
	if _, err := c.Run(`SELECT k, sum(v) FROM facts GROUP BY k`); err != nil {
		t.Fatalf("query refused after pressure released: %v", err)
	}
	if cur, _, _ := c.NodeMemory(0); cur != 0 {
		t.Fatalf("node 0 still holds %d bytes after completion", cur)
	}
}
