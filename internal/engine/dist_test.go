package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/network"
	"repro/internal/types"
)

// buildDistCluster creates one "process" of an nNodes-wide distributed
// cluster: a TCPNode on an ephemeral port and a Cluster owning data
// node id only. Every process loads the full deterministic dataset and
// keeps its own hash slice, exactly like the real claims-node binary.
func buildDistCluster(t *testing.T, id, nNodes int, cfg Config) *Cluster {
	t.Helper()
	node, err := network.NewTCPNode(id, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New(nNodes)
	trades := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("trade_date", types.Date),
		types.Col("trade_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "trades", Schema: trades, PartKey: []int{1}})
	secs := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("entry_date", types.Date),
		types.Col("entry_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "securities", Schema: secs, PartKey: []int{0}})

	cfg.Nodes = nNodes
	c, err := NewClusterDist(cfg, cat, node)
	if err != nil {
		node.Close()
		t.Fatal(err)
	}
	loadDistData(t, c, trades, secs)
	return c
}

// loadDistData loads the deterministic test dataset; every process (and
// the single-process reference cluster) generates the identical row
// stream, so partitions agree across processes and table statistics —
// which drive plan compilation — are cluster-wide totals everywhere.
func loadDistData(t *testing.T, c *Cluster, trades, secs *types.Schema) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	day := types.MustParseDate("2010-10-30")
	tl, err := c.NewTableLoader("trades")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		r := tl.Row()
		types.PutValue(r, trades, 0, types.IntVal(int64(rng.Intn(400))))
		types.PutValue(r, trades, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, trades, 2, types.DateVal(day-int64(rng.Intn(5))))
		types.PutValue(r, trades, 3, types.FloatVal(float64(rng.Intn(1000))))
		tl.Add()
	}
	tl.Close()
	sl, err := c.NewTableLoader("securities")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		r := sl.Row()
		types.PutValue(r, secs, 0, types.IntVal(int64(rng.Intn(400))))
		types.PutValue(r, secs, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, secs, 2, types.DateVal(day-int64(rng.Intn(3))))
		types.PutValue(r, secs, 3, types.FloatVal(float64(rng.Intn(1000))))
		sl.Add()
	}
	sl.Close()
}

// meshDist wires every cluster's transport with every bound address —
// the SetPeer pushes the membership plane performs on view changes.
func meshDist(clusters []*Cluster) {
	for _, c := range clusters {
		for _, peer := range clusters {
			pn := peer.dist.fabric.Node()
			c.dist.fabric.Node().SetPeer(pn.ID(), pn.Addr())
		}
	}
}

// runDistQuery fans one query out over all clusters: cluster[coord]
// coordinates, the rest participate, like the claims-node /exec
// broadcast. Returns the coordinator's result/error and the first
// participant error.
func runDistQuery(clusters []*Cluster, coord int, sql string) (*Result, error, error) {
	dataNodes := make([]int, len(clusters))
	for i := range dataNodes {
		dataNodes[i] = i
	}
	spec := ExecSpec{
		QID: clusters[coord].NextQueryID(), SQL: sql,
		Coordinator: coord, DataNodes: dataNodes,
	}
	var wg sync.WaitGroup
	var partErr error
	var partMu sync.Mutex
	for i, c := range clusters {
		if i == coord {
			continue
		}
		wg.Add(1)
		go func(c *Cluster) {
			defer wg.Done()
			if err := c.RunParticipant(context.Background(), spec); err != nil {
				partMu.Lock()
				if partErr == nil {
					partErr = err
				}
				partMu.Unlock()
			}
		}(c)
	}
	res, err := clusters[coord].RunCoordinated(context.Background(), spec, nil)
	wg.Wait()
	return res, err, partErr
}

// sortedRows renders a result into sorted strings for order-free
// comparison.
func sortedRows(res *Result) []string {
	var out []string
	for _, row := range res.Rows() {
		s := ""
		for _, v := range row {
			s += fmt.Sprintf("%v|", v)
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestDistQueryMatchesSingleProcess runs repartitioning queries across
// three dist clusters (three would-be processes exchanging blocks over
// real sockets, each holding one partition) and asserts the results
// match the same data on a classic single-process cluster, for every
// coordinator choice.
func TestDistQueryMatchesSingleProcess(t *testing.T) {
	const nNodes = 3
	cfg := Config{CoresPerNode: 2, BlockSize: 2048, ExchangeBuffer: 8}
	var clusters []*Cluster
	for i := 0; i < nNodes; i++ {
		clusters = append(clusters, buildDistCluster(t, i, nNodes, cfg))
	}
	defer func() {
		for _, c := range clusters {
			c.Close()
		}
	}()
	meshDist(clusters)

	refC := buildDistReference(t, nNodes)
	defer refC.Close()

	queries := []string{
		`SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id`,
		`SELECT count(*) FROM trades T, securities S
		 WHERE T.trade_date = '2010-10-30' AND S.acct_id = T.acct_id`,
	}
	for qi, sql := range queries {
		want, err := refC.Run(sql)
		if err != nil {
			t.Fatalf("query %d reference: %v", qi, err)
		}
		for coord := 0; coord < nNodes; coord++ {
			res, err, perr := runDistQuery(clusters, coord, sql)
			if err != nil {
				t.Fatalf("query %d coord %d: coordinator: %v", qi, coord, err)
			}
			if perr != nil {
				t.Fatalf("query %d coord %d: participant: %v", qi, coord, perr)
			}
			if got, exp := sortedRows(res), sortedRows(want); !equalStrings(got, exp) {
				t.Fatalf("query %d coord %d: distributed result diverges: %d rows vs %d",
					qi, coord, len(got), len(exp))
			}
		}
	}
	for i, c := range clusters {
		if n := c.OpenExchanges(); n != 0 {
			t.Fatalf("cluster %d: %d exchange registrations leaked", i, n)
		}
	}
}

// buildDistReference is the all-in-one-process control group: same
// catalog, same deterministic dataset, classic execution.
func buildDistReference(t *testing.T, nNodes int) *Cluster {
	t.Helper()
	cat := catalog.New(nNodes)
	trades := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("trade_date", types.Date),
		types.Col("trade_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "trades", Schema: trades, PartKey: []int{1}})
	secs := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("entry_date", types.Date),
		types.Col("entry_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "securities", Schema: secs, PartKey: []int{0}})
	c := NewCluster(Config{Nodes: nNodes, CoresPerNode: 2, BlockSize: 2048, ExchangeBuffer: 8}, cat)
	loadDistData(t, c, trades, secs)
	return c
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDistNodeLostMidQuery severs a whole node mid-query and asserts
// the typed verdict surfaces everywhere, with no goroutine or exchange
// leaks — the engine-level contract behind the clustertest harness's
// kill -9 scenario. The victim node never executes its share (it "died"
// as the query fanned out), so the dataflow deterministically blocks on
// its missing streams: survivors' consumers wait for EOFs that will
// never come, and their senders retry into the void under the reliable
// protocol. Only the failure detector's NodeLost verdict can end the
// query, which is exactly the claim under test.
func TestDistNodeLostMidQuery(t *testing.T) {
	before := runtime.NumGoroutine()

	const nNodes, victim, coord = 3, 2, 0
	retry := network.DefaultRetryPolicy
	retry.Deadline = 20 * time.Second
	cfg := Config{CoresPerNode: 2, BlockSize: 2048, ExchangeBuffer: 4, Retry: &retry}
	var clusters []*Cluster
	for i := 0; i < nNodes; i++ {
		clusters = append(clusters, buildDistCluster(t, i, nNodes, cfg))
	}
	meshDist(clusters)

	dataNodes := []int{0, 1, 2}
	spec := ExecSpec{
		QID: clusters[coord].NextQueryID(),
		SQL: `SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id`,
		Coordinator: coord, DataNodes: dataNodes,
	}

	type outcome struct {
		who string
		err error
	}
	results := make(chan outcome, 2)
	go func() {
		_, err := clusters[coord].RunCoordinated(context.Background(), spec, nil)
		results <- outcome{"coordinator", err}
	}()
	go func() {
		results <- outcome{"participant", clusters[1].RunParticipant(context.Background(), spec)}
	}()

	// Let the survivors wire up and block on the victim's silence, then
	// deliver the failure detector's verdict: the victim's process dies
	// (its socket closes) and the membership plane notifies the
	// survivors, as the cluster Agent's OnNodeDead callback does.
	time.Sleep(150 * time.Millisecond)
	clusters[victim].Close()
	for _, i := range []int{coord, 1} {
		clusters[i].NodeLost(victim)
	}

	for i := 0; i < 2; i++ {
		select {
		case oc := <-results:
			if !errors.Is(oc.err, ErrNodeLost) {
				t.Fatalf("%s: got %v, want ErrNodeLost", oc.who, oc.err)
			}
			var nl *NodeLostError
			if !errors.As(oc.err, &nl) || nl.Node != victim {
				t.Fatalf("%s: error %v does not name the victim node %d", oc.who, oc.err, victim)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("query did not fail after NodeLost")
		}
	}

	// Queries launched after the death fail immediately — the lost list
	// closes the notification/registration race.
	if _, err := clusters[coord].RunCoordinated(context.Background(), ExecSpec{
		QID: clusters[coord].NextQueryID(), SQL: spec.SQL,
		Coordinator: coord, DataNodes: dataNodes,
	}, nil); !errors.Is(err, ErrNodeLost) {
		t.Fatalf("post-death query: got %v, want ErrNodeLost", err)
	}

	// A restored node is served again: re-admit the victim's id at a
	// fresh address (rebuilt store, as a restarted process would have).
	revived := buildDistCluster(t, victim, nNodes, cfg)
	clusters[victim] = revived
	meshDist(clusters)
	for _, i := range []int{coord, 1} {
		clusters[i].NodeRestored(victim, revived.dist.fabric.Node().Addr())
	}
	res, cerr, perr := runDistQuery(clusters, coord, spec.SQL)
	if cerr != nil || perr != nil {
		t.Fatalf("query after rejoin: coordinator %v, participant %v", cerr, perr)
	}
	if res.NumRows() == 0 {
		t.Fatal("query after rejoin returned no rows")
	}

	// Teardown left nothing behind: every FabricExchange.Release ran on
	// the live nodes, and no worker, sender or reader goroutine outlived
	// its query.
	for _, i := range []int{coord, 1, victim} {
		if n := clusters[i].OpenExchanges(); n != 0 {
			t.Fatalf("cluster %d: %d exchange registrations leaked", i, n)
		}
	}
	for _, c := range clusters {
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
