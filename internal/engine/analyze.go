package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/plan"
	"repro/internal/telemetry"
)

// ExplainAnalyze compiles and executes a query with per-operator
// instrumentation on, returning the result together with an Analysis:
// the physical plan annotated with measured rows, blocks, operator
// time, exchange traffic and worker parallelism. Every number in the
// analysis is read back from the query's telemetry scope — the same
// counters, gauges and events any attached sink observes — so the
// annotated plan cannot drift from the telemetry stream.
func (c *Cluster) ExplainAnalyze(query string) (*Result, *Analysis, error) {
	return c.ExplainAnalyzeScoped(query, newQueryScope())
}

// ExplainAnalyzeScoped is ExplainAnalyze under a caller-owned scope.
func (c *Cluster) ExplainAnalyzeScoped(query string, sc *telemetry.Scope) (*Result, *Analysis, error) {
	p, err := plan.Compile(query, c.cat)
	if err != nil {
		return nil, nil, err
	}
	az := &analyzeState{}
	res, err := c.runPlan(context.Background(), p, sc, query, az)
	if err != nil {
		return nil, nil, err
	}
	return res, az.an, nil
}

// analyzeState collects the extra measurements EXPLAIN ANALYZE reports
// beyond the always-on scope instruments: per-exchange traffic (from
// BlockSent events) and, after the run, the per-operator counter and
// per-segment gauge snapshot packaged as an Analysis.
type analyzeState struct {
	sent *telemetry.MemSink
	an   *Analysis
}

// attach hooks the state into a starting execution.
func (az *analyzeState) attach(e *exec) {
	az.sent = telemetry.NewMemSink(telemetry.KindBlockSent)
	e.scope.Attach(az.sent)
}

// finish snapshots the completed execution into an Analysis.
func (az *analyzeState) finish(e *exec) {
	an := &Analysis{
		Plan:     e.p,
		Scope:    e.scope,
		Mode:     e.c.cfg.Mode.String(),
		Nodes:    e.c.cfg.Nodes,
		resultEx: e.resultExID,
		Duration: e.scope.Elapsed() - e.startAt,
		ops:      e.ops,
		exBytes:  map[int]int64{},
		exBlocks: map[int]int64{},
		exRows:   map[int]int64{},
		segPeak:  map[string]int64{},
		segMean:  map[string]float64{},
		opMemPk:  map[int]int64{},
		opMemMn:  map[int]float64{},
	}
	// Operator memory: peak from the op.<id>.mem_bytes gauge (written on
	// every reservation), mean from the sampler's 25ms readings; short
	// queries that finished between samples fall back to the peak.
	for _, id := range e.ops {
		pk := e.scope.Gauge(telemetry.OpCtr(id, telemetry.OpMemBytes)).Peak()
		an.opMemPk[id] = pk
		if n := e.opMemN[id]; n > 0 {
			an.opMemMn[id] = e.opMemSum[id] / float64(n)
		} else {
			an.opMemMn[id] = float64(pk)
		}
	}
	for _, ev := range az.sent.Events() {
		bs := ev.Rec.(telemetry.BlockSent)
		an.exBytes[bs.Exchange] += int64(bs.Bytes)
		an.exBlocks[bs.Exchange]++
		an.exRows[bs.Exchange] += int64(bs.Tuples)
	}
	// Worker parallelism: peak from the per-segment worker gauge (set on
	// every expand/shrink), mean from the 25ms parallelism samples.
	// Zero-worker samples are taken after the segment hit its barrier
	// (the sampler outlives individual segments), so they are not part
	// of the segment's execution and are excluded; short queries may
	// finish between samples entirely, in which case the mean falls back
	// to the peak.
	counts := map[string]int{}
	for _, ev := range e.traceSink.Events() {
		for seg, w := range ev.Rec.(telemetry.ParallelismSample).Parallelism {
			if w > 0 {
				an.segMean[seg] += float64(w)
				counts[seg]++
			}
		}
	}
	for _, s := range e.p.Segments {
		name := fmt.Sprintf("S%d", s.ID)
		peak := e.scope.Gauge(telemetry.GaugeSegWorkers(name)).Peak()
		an.segPeak[name] = peak
		if n := counts[name]; n > 0 {
			an.segMean[name] /= float64(n)
		} else {
			an.segMean[name] = float64(peak)
		}
	}
	az.an = an
}

// Analysis is the measured view of one executed plan, rendered by
// EXPLAIN ANALYZE. All figures are cluster-wide totals: the plan's
// operator templates are instantiated once per node, and the instances
// share counters keyed by plan-node id.
type Analysis struct {
	Plan  *plan.Plan
	Scope *telemetry.Scope
	Mode  string
	Nodes int
	// Duration is the wall-clock execution time.
	Duration time.Duration

	ops      map[plan.PhysOp]int
	resultEx int           // the run's derived result-collector exchange id
	exBytes  map[int]int64 // exchange id → bytes crossing node boundaries
	exBlocks map[int]int64
	exRows   map[int]int64
	segPeak  map[string]int64
	segMean  map[string]float64
	opMemPk  map[int]int64
	opMemMn  map[int]float64
}

// OpID returns the instrumentation id of a plan operator — the <id> in
// its op.<id>.* scope counters.
func (a *Analysis) OpID(op plan.PhysOp) (int, bool) {
	id, ok := a.ops[op]
	return id, ok
}

// OpStats returns an operator's measured totals, straight from the
// scope counters the execution wrote. busy is cumulative worker time
// inside the operator's Open and Next — Open included because blocking
// operators (hash agg, hash join build, sort) do their real work
// draining the child during Open, with Next just replaying results.
func (a *Analysis) OpStats(op plan.PhysOp) (rows, blocks int64, busy time.Duration) {
	id, ok := a.ops[op]
	if !ok {
		return 0, 0, 0
	}
	return a.Scope.Counter(telemetry.OpCtr(id, telemetry.OpRows)).Load(),
		a.Scope.Counter(telemetry.OpCtr(id, telemetry.OpBlocks)).Load(),
		time.Duration(a.Scope.Counter(telemetry.OpCtr(id, telemetry.OpBusyNs)).Load() +
			a.Scope.Counter(telemetry.OpCtr(id, telemetry.OpOpenNs)).Load())
}

// OpMemStats returns an operator's tracked working-memory high-water
// mark and sampled mean, in bytes, cluster-wide across its per-node
// instances. Both are zero for stateless (streaming) operators.
func (a *Analysis) OpMemStats(op plan.PhysOp) (peak int64, mean float64) {
	id, ok := a.ops[op]
	if !ok {
		return 0, 0
	}
	return a.opMemPk[id], a.opMemMn[id]
}

// ExchangeStats returns an exchange's measured cross-node traffic.
// Co-located producer/consumer instances short-circuit locally and do
// not count (matching the net.bytes counter).
func (a *Analysis) ExchangeStats(ex int) (rows, blocks, bytes int64) {
	return a.exRows[ex], a.exBlocks[ex], a.exBytes[ex]
}

// ExchangeStall returns the cumulative time this exchange's senders
// spent waiting for their turn on the per-node transmit scheduler —
// the TCP fabric's ex.<id>.stall_ns counter. Always zero on the
// in-process fabric, which has no shared transmit path.
func (a *Analysis) ExchangeStall(ex int) time.Duration {
	return time.Duration(a.Scope.Counter(telemetry.ExCtr(ex, "stall_ns")).Load())
}

// SegmentWorkers returns a segment's worker-parallelism peak and mean.
func (a *Analysis) SegmentWorkers(seg *plan.Segment) (peak int64, mean float64) {
	name := fmt.Sprintf("S%d", seg.ID)
	return a.segPeak[name], a.segMean[name]
}

// selfTime is an operator's busy time minus its children's: the time
// workers spent in this operator itself. Busy time is cumulative across
// concurrent workers, so totals can exceed wall time.
func (a *Analysis) selfTime(op plan.PhysOp) time.Duration {
	_, _, busy := a.OpStats(op)
	for _, c := range plan.Children(op) {
		_, _, cb := a.OpStats(c)
		busy -= cb
	}
	if busy < 0 {
		busy = 0
	}
	return busy
}

// Render renders the analyzed plan: the EXPLAIN tree with a measurement
// suffix on every line.
func (a *Analysis) Render() string {
	head := fmt.Sprintf("mode=%s nodes=%d duration=%v\n",
		a.Mode, a.Nodes, a.Duration.Round(time.Microsecond))
	return head + a.Plan.Render(plan.Annotations{
		Op: func(op plan.PhysOp) string {
			rows, blocks, busy := a.OpStats(op)
			s := fmt.Sprintf("  (rows=%d blocks=%d time=%v self=%v",
				rows, blocks,
				busy.Round(time.Microsecond),
				a.selfTime(op).Round(time.Microsecond))
			if peak, mean := a.OpMemStats(op); peak > 0 {
				s += fmt.Sprintf(" mem peak=%dB mean=%.0fB", peak, mean)
			}
			return s + ")"
		},
		Segment: func(s *plan.Segment) string {
			peak, mean := a.SegmentWorkers(s)
			return fmt.Sprintf("  (workers peak=%d mean=%.1f)", peak, mean)
		},
		Out: func(s *plan.Segment) string {
			ex := a.resultEx
			if s.Out != nil {
				ex = s.Out.Exchange
			}
			rows, blocks, bytes := a.ExchangeStats(ex)
			line := fmt.Sprintf("  (rows=%d blocks=%d net=%dB", rows, blocks, bytes)
			if stall := a.ExchangeStall(ex); stall > 0 {
				line += fmt.Sprintf(" stall=%v", stall.Round(time.Microsecond))
			}
			return line + ")"
		},
	})
}
