package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/plan"
	"repro/internal/telemetry"
)

// ExplainAnalyze compiles and executes a query with per-operator
// instrumentation on, returning the result together with an Analysis:
// the physical plan annotated with measured rows, blocks, operator
// time, exchange traffic and worker parallelism. Every number in the
// analysis is read back from the query's telemetry scope — the same
// counters, gauges and events any attached sink observes — so the
// annotated plan cannot drift from the telemetry stream.
func (c *Cluster) ExplainAnalyze(query string) (*Result, *Analysis, error) {
	return c.ExplainAnalyzeScoped(query, newQueryScope())
}

// ExplainAnalyzeScoped is ExplainAnalyze under a caller-owned scope.
func (c *Cluster) ExplainAnalyzeScoped(query string, sc *telemetry.Scope) (*Result, *Analysis, error) {
	p, hit, err := c.CompileCached(query)
	if err != nil {
		return nil, nil, err
	}
	az := &analyzeState{}
	res, err := c.runPlan(context.Background(), p, sc, query, az)
	if err != nil {
		return nil, nil, err
	}
	if az.an != nil {
		az.an.CacheState = "miss"
		if hit {
			az.an.CacheState = "hit"
		}
	}
	return res, az.an, nil
}

// analyzeState collects the extra measurements EXPLAIN ANALYZE reports
// beyond the always-on scope instruments: per-exchange traffic (from
// BlockSent events) and, after the run, the per-operator counter and
// per-segment gauge snapshot packaged as an Analysis.
type analyzeState struct {
	sent *telemetry.MemSink
	an   *Analysis
	// perNode holds the per-participant scope snapshots of an analyzed
	// distributed query — the coordinator's own share first (taken before
	// the merge), then every remote snapshot the control plane shipped in
	// time. Nil on single-process runs.
	perNode []*telemetry.ScopeSnapshot
}

// nodeBreakdowns summarizes the per-node snapshots for the registry's
// slow-query log: each participant's cumulative operator rows and busy
// time, memory peak, and cross-node traffic. Nil when the query ran
// without stats shipping.
func (az *analyzeState) nodeBreakdowns() []telemetry.NodeBreakdown {
	return breakdownsFromSnaps(az.perNode)
}

// NodeBreakdowns is the analysis's per-node summary (same shape the
// slow-query log records); nil on single-process runs.
func (a *Analysis) NodeBreakdowns() []telemetry.NodeBreakdown {
	return breakdownsFromSnaps(a.perNode)
}

func breakdownsFromSnaps(perNode []*telemetry.ScopeSnapshot) []telemetry.NodeBreakdown {
	if perNode == nil {
		return nil
	}
	out := make([]telemetry.NodeBreakdown, 0, len(perNode))
	for _, snap := range perNode {
		bd := telemetry.NodeBreakdown{
			Node:     snap.Node,
			NetBytes: snap.Counter(telemetry.CtrNetBytes),
		}
		if g, ok := snap.Gauges[telemetry.GaugeMemBytes]; ok {
			bd.MemPeakBytes = g.Peak
		}
		var busy int64
		for name, v := range snap.Counters {
			_, what, ok := parseIDCtr(name, "op.")
			if !ok {
				continue
			}
			switch what {
			case telemetry.OpRows:
				bd.Rows += v
			case telemetry.OpBusyNs, telemetry.OpOpenNs:
				busy += v
			}
		}
		bd.BusyMS = busy / int64(time.Millisecond)
		out = append(out, bd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// parseIDCtr splits a "<prefix><id>.<what>" counter name (the op.* and
// ex.* families built by telemetry.OpCtr/ExCtr).
func parseIDCtr(name, prefix string) (id int, what string, ok bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, "", false
	}
	rest := name[len(prefix):]
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return 0, "", false
	}
	n, err := strconv.Atoi(rest[:dot])
	if err != nil {
		return 0, "", false
	}
	return n, rest[dot+1:], true
}

// attach hooks the state into a starting execution.
func (az *analyzeState) attach(e *exec) {
	az.sent = telemetry.NewMemSink(telemetry.KindBlockSent)
	e.scope.Attach(az.sent)
}

// finish snapshots the completed execution into an Analysis.
func (az *analyzeState) finish(e *exec) {
	an := &Analysis{
		Plan:        e.p,
		Scope:       e.scope,
		Mode:        e.c.cfg.Mode.String(),
		Nodes:       e.c.cfg.Nodes,
		resultEx:    e.resultExID,
		Duration:    e.scope.Elapsed() - e.startAt,
		ops:         e.ops,
		master:      e.master,
		dataNodes:   e.dataNodes,
		perNode:     az.perNode,
		exBytes:     map[int]int64{},
		exBlocks:    map[int]int64{},
		exRows:      map[int]int64{},
		exNodeBytes: map[int]map[int]int64{},
		segPeak:     map[string]int64{},
		segMean:     map[string]float64{},
		opMemPk:     map[int]int64{},
		opMemMn:     map[int]float64{},
	}
	sort.Slice(an.perNode, func(i, j int) bool { return an.perNode[i].Node < an.perNode[j].Node })
	// Operator memory: peak from the op.<id>.mem_bytes gauge (written on
	// every reservation), mean from the sampler's 25ms readings; short
	// queries that finished between samples fall back to the peak.
	for _, id := range e.ops {
		pk := e.scope.Gauge(telemetry.OpCtr(id, telemetry.OpMemBytes)).Peak()
		an.opMemPk[id] = pk
		if n := e.opMemN[id]; n > 0 {
			an.opMemMn[id] = e.opMemSum[id] / float64(n)
		} else {
			an.opMemMn[id] = float64(pk)
		}
	}
	// Exchange traffic. Distributed analyzed runs read the per-node
	// snapshots — every participant folded its own BlockSent events into
	// ex.<id>.* counters, the coordinator's share included as perNode[…]
	// — which both totals cluster-wide traffic and attributes it per
	// producing node for skew. Single-process runs fold the local events
	// directly, exactly as before.
	if az.perNode != nil {
		for _, snap := range az.perNode {
			for name, v := range snap.Counters {
				ex, what, ok := parseIDCtr(name, "ex.")
				if !ok {
					continue
				}
				switch what {
				case "rows":
					an.exRows[ex] += v
				case "blocks":
					an.exBlocks[ex] += v
				case "bytes":
					an.exBytes[ex] += v
					if an.exNodeBytes[ex] == nil {
						an.exNodeBytes[ex] = map[int]int64{}
					}
					an.exNodeBytes[ex][snap.Node] += v
				}
			}
		}
	} else {
		for _, ev := range az.sent.Events() {
			bs := ev.Rec.(telemetry.BlockSent)
			an.exBytes[bs.Exchange] += int64(bs.Bytes)
			an.exBlocks[bs.Exchange]++
			an.exRows[bs.Exchange] += int64(bs.Tuples)
		}
	}
	// Worker parallelism: peak from the per-segment worker gauge (set on
	// every expand/shrink), mean from the 25ms parallelism samples.
	// Zero-worker samples are taken after the segment hit its barrier
	// (the sampler outlives individual segments), so they are not part
	// of the segment's execution and are excluded; short queries may
	// finish between samples entirely, in which case the mean falls back
	// to the peak.
	counts := map[string]int{}
	for _, ev := range e.traceSink.Events() {
		for seg, w := range ev.Rec.(telemetry.ParallelismSample).Parallelism {
			if w > 0 {
				an.segMean[seg] += float64(w)
				counts[seg]++
			}
		}
	}
	for _, s := range e.p.Segments {
		name := fmt.Sprintf("S%d", s.ID)
		peak := e.scope.Gauge(telemetry.GaugeSegWorkers(name)).Peak()
		an.segPeak[name] = peak
		if n := counts[name]; n > 0 {
			an.segMean[name] /= float64(n)
		} else {
			an.segMean[name] = float64(peak)
		}
	}
	az.an = an
}

// Analysis is the measured view of one executed plan, rendered by
// EXPLAIN ANALYZE. All figures are cluster-wide totals: the plan's
// operator templates are instantiated once per node, and the instances
// share counters keyed by plan-node id.
type Analysis struct {
	Plan  *plan.Plan
	Scope *telemetry.Scope
	Mode  string
	Nodes int
	// Duration is the wall-clock execution time.
	Duration time.Duration
	// CacheState reports whether the plan came from the plan cache
	// ("hit" / "miss"); empty when the entry point bypassed the cache.
	CacheState string

	ops      map[plan.PhysOp]int
	resultEx int           // the run's derived result-collector exchange id
	exBytes  map[int]int64 // exchange id → bytes crossing node boundaries
	exBlocks map[int]int64
	exRows   map[int]int64
	// exNodeBytes attributes exchange bytes to the producing node
	// (distributed analyzed runs only) — the input to per-exchange skew.
	exNodeBytes map[int]map[int]int64
	segPeak     map[string]int64
	segMean     map[string]float64
	opMemPk     map[int]int64
	opMemMn     map[int]float64
	// master/dataNodes echo the run's placement; perNode holds each
	// participant's scope snapshot (sorted by node), nil outside
	// distributed analyzed runs.
	master    int
	dataNodes []int
	perNode   []*telemetry.ScopeSnapshot
}

// PerNode returns each participant's scope snapshot, sorted by node id
// — the coordinator's own share included. Nil unless the query ran
// distributed with stats shipping (RunCoordinatedAnalyze).
func (a *Analysis) PerNode() []*telemetry.ScopeSnapshot {
	return a.perNode
}

// nodeSnap finds one node's snapshot, or nil.
func (a *Analysis) nodeSnap(node int) *telemetry.ScopeSnapshot {
	for _, snap := range a.perNode {
		if snap.Node == node {
			return snap
		}
	}
	return nil
}

// NodeOpStats is OpStats restricted to one participant: the operator's
// rows, blocks and busy time on that node alone, read from the node's
// shipped snapshot. ok is false when the query had no per-node stats or
// the node never reported.
func (a *Analysis) NodeOpStats(op plan.PhysOp, node int) (rows, blocks int64, busy time.Duration, ok bool) {
	id, okID := a.ops[op]
	snap := a.nodeSnap(node)
	if !okID || snap == nil {
		return 0, 0, 0, false
	}
	return snap.Counter(telemetry.OpCtr(id, telemetry.OpRows)),
		snap.Counter(telemetry.OpCtr(id, telemetry.OpBlocks)),
		time.Duration(snap.Counter(telemetry.OpCtr(id, telemetry.OpBusyNs)) +
			snap.Counter(telemetry.OpCtr(id, telemetry.OpOpenNs))),
		true
}

// producersOf lists the nodes producing into a segment's output
// exchange — the placement rule nodesOf uses, rederived from the
// analysis's recorded placement.
func (a *Analysis) producersOf(s *plan.Segment) []int {
	if s.OnMaster {
		return []int{a.master}
	}
	return a.dataNodes
}

// ExchangeSkew reports the max/min ratio of bytes produced into the
// exchange across its producing nodes — the paper's skew signal for
// adaptive repartitioning. +Inf means at least one producer sent
// nothing while another did. ok is false without per-node stats, with
// fewer than two producers, or when no producer sent anything.
func (a *Analysis) ExchangeSkew(ex int, producers []int) (ratio float64, ok bool) {
	if len(a.perNode) < 2 || len(producers) < 2 {
		return 0, false
	}
	m := a.exNodeBytes[ex]
	if m == nil {
		return 0, false
	}
	var mx, mn int64 = -1, -1
	for _, n := range producers {
		v := m[n]
		if mx < 0 || v > mx {
			mx = v
		}
		if mn < 0 || v < mn {
			mn = v
		}
	}
	if mx <= 0 {
		return 0, false
	}
	if mn == 0 {
		return math.Inf(1), true
	}
	return float64(mx) / float64(mn), true
}

// OpID returns the instrumentation id of a plan operator — the <id> in
// its op.<id>.* scope counters.
func (a *Analysis) OpID(op plan.PhysOp) (int, bool) {
	id, ok := a.ops[op]
	return id, ok
}

// OpStats returns an operator's measured totals, straight from the
// scope counters the execution wrote. busy is cumulative worker time
// inside the operator's Open and Next — Open included because blocking
// operators (hash agg, hash join build, sort) do their real work
// draining the child during Open, with Next just replaying results.
func (a *Analysis) OpStats(op plan.PhysOp) (rows, blocks int64, busy time.Duration) {
	id, ok := a.ops[op]
	if !ok {
		return 0, 0, 0
	}
	return a.Scope.Counter(telemetry.OpCtr(id, telemetry.OpRows)).Load(),
		a.Scope.Counter(telemetry.OpCtr(id, telemetry.OpBlocks)).Load(),
		time.Duration(a.Scope.Counter(telemetry.OpCtr(id, telemetry.OpBusyNs)).Load() +
			a.Scope.Counter(telemetry.OpCtr(id, telemetry.OpOpenNs)).Load())
}

// OpMemStats returns an operator's tracked working-memory high-water
// mark and sampled mean, in bytes, cluster-wide across its per-node
// instances. Both are zero for stateless (streaming) operators.
func (a *Analysis) OpMemStats(op plan.PhysOp) (peak int64, mean float64) {
	id, ok := a.ops[op]
	if !ok {
		return 0, 0
	}
	return a.opMemPk[id], a.opMemMn[id]
}

// ExchangeStats returns an exchange's measured cross-node traffic.
// Co-located producer/consumer instances short-circuit locally and do
// not count (matching the net.bytes counter).
func (a *Analysis) ExchangeStats(ex int) (rows, blocks, bytes int64) {
	return a.exRows[ex], a.exBlocks[ex], a.exBytes[ex]
}

// ExchangeStall returns the cumulative time this exchange's senders
// spent waiting for their turn on the per-node transmit scheduler —
// the TCP fabric's ex.<id>.stall_ns counter. Always zero on the
// in-process fabric, which has no shared transmit path.
func (a *Analysis) ExchangeStall(ex int) time.Duration {
	return time.Duration(a.Scope.Counter(telemetry.ExCtr(ex, "stall_ns")).Load())
}

// SegmentWorkers returns a segment's worker-parallelism peak and mean.
func (a *Analysis) SegmentWorkers(seg *plan.Segment) (peak int64, mean float64) {
	name := fmt.Sprintf("S%d", seg.ID)
	return a.segPeak[name], a.segMean[name]
}

// selfTime is an operator's busy time minus its children's: the time
// workers spent in this operator itself. Busy time is cumulative across
// concurrent workers, so totals can exceed wall time.
func (a *Analysis) selfTime(op plan.PhysOp) time.Duration {
	_, _, busy := a.OpStats(op)
	for _, c := range plan.Children(op) {
		_, _, cb := a.OpStats(c)
		busy -= cb
	}
	if busy < 0 {
		busy = 0
	}
	return busy
}

// Render renders the analyzed plan: the EXPLAIN tree with a measurement
// suffix on every line, followed — for distributed analyzed runs — by a
// per-node section breaking every operator's rows/time/mem down by
// participant, the cluster view the snapshot shipping exists for.
func (a *Analysis) Render() string {
	head := fmt.Sprintf("mode=%s nodes=%d duration=%v",
		a.Mode, a.Nodes, a.Duration.Round(time.Microsecond))
	if a.CacheState != "" {
		head += " plan-cache=" + a.CacheState
	}
	head += "\n"
	out := head + a.Plan.Render(plan.Annotations{
		Op: func(op plan.PhysOp) string {
			rows, blocks, busy := a.OpStats(op)
			s := fmt.Sprintf("  (rows=%d blocks=%d time=%v self=%v",
				rows, blocks,
				busy.Round(time.Microsecond),
				a.selfTime(op).Round(time.Microsecond))
			if peak, mean := a.OpMemStats(op); peak > 0 {
				s += fmt.Sprintf(" mem peak=%dB mean=%.0fB", peak, mean)
			}
			return s + ")"
		},
		Segment: func(s *plan.Segment) string {
			peak, mean := a.SegmentWorkers(s)
			return fmt.Sprintf("  (workers peak=%d mean=%.1f)", peak, mean)
		},
		Out: func(s *plan.Segment) string {
			ex := a.resultEx
			if s.Out != nil {
				ex = s.Out.Exchange
			}
			rows, blocks, bytes := a.ExchangeStats(ex)
			line := fmt.Sprintf("  (rows=%d blocks=%d net=%dB", rows, blocks, bytes)
			if stall := a.ExchangeStall(ex); stall > 0 {
				line += fmt.Sprintf(" stall=%v", stall.Round(time.Microsecond))
			}
			if skew, ok := a.ExchangeSkew(ex, a.producersOf(s)); ok {
				if math.IsInf(skew, 1) {
					line += " skew=inf"
				} else {
					line += fmt.Sprintf(" skew=%.1fx", skew)
				}
			}
			return line + ")"
		},
	})
	if a.perNode != nil {
		out += a.renderPerNode()
	}
	return out
}

// renderPerNode renders the per-node section: one line per instrumented
// operator, the operator's share on every reporting node side by side.
func (a *Analysis) renderPerNode() string {
	var ops []plan.PhysOp
	seen := map[int]bool{}
	for _, s := range a.Plan.Segments {
		plan.Walk(s.Root, func(op plan.PhysOp) {
			if id, ok := a.ops[op]; ok && !seen[id] {
				seen[id] = true
				ops = append(ops, op)
			}
		})
	}
	sort.Slice(ops, func(i, j int) bool { return a.ops[ops[i]] < a.ops[ops[j]] })

	var b strings.Builder
	b.WriteString("per-node:\n")
	for _, op := range ops {
		id := a.ops[op]
		fmt.Fprintf(&b, "  [op %d %s]", id, plan.OpLabel(op))
		for i, snap := range a.perNode {
			rows, _, busy, _ := a.NodeOpStats(op, snap.Node)
			if i > 0 {
				b.WriteString(" |")
			}
			fmt.Fprintf(&b, " node%d rows=%d time=%v", snap.Node, rows, busy.Round(time.Microsecond))
			if g, ok := snap.Gauges[telemetry.OpCtr(id, telemetry.OpMemBytes)]; ok && g.Peak > 0 {
				fmt.Fprintf(&b, " mem=%dB", g.Peak)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
