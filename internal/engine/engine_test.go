package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/types"
)

// buildTestCluster creates a small cluster with two synthetic tables
// shaped like the paper's SSE schema: trades partitioned on sec_code,
// securities on acct_id (so joins on acct_id need repartitioning).
func buildTestCluster(t *testing.T, mode Mode, nodes int) (*Cluster, *refData) {
	t.Helper()
	cat := catalog.New(nodes)
	trades := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("trade_date", types.Date),
		types.Col("trade_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "trades", Schema: trades, PartKey: []int{1}})
	secs := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("entry_date", types.Date),
		types.Col("entry_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "securities", Schema: secs, PartKey: []int{0}})

	c := NewCluster(Config{
		Nodes:          nodes,
		CoresPerNode:   2,
		Mode:           mode,
		BlockSize:      2048,
		SchedTick:      5e6, // 5ms
		ExchangeBuffer: 8,   // small pipelined staging highlights ME's cost
	}, cat)

	ref := &refData{}
	rng := rand.New(rand.NewSource(42))
	day := types.MustParseDate("2010-10-30")

	tl, err := c.NewTableLoader("trades")
	if err != nil {
		t.Fatal(err)
	}
	const nTrades = 8000
	for i := 0; i < nTrades; i++ {
		r := tl.Row()
		acct := int64(rng.Intn(500))
		sec := int64(rng.Intn(50))
		d := day - int64(rng.Intn(5))
		vol := float64(rng.Intn(1000))
		types.PutValue(r, trades, 0, types.IntVal(acct))
		types.PutValue(r, trades, 1, types.IntVal(sec))
		types.PutValue(r, trades, 2, types.DateVal(d))
		types.PutValue(r, trades, 3, types.FloatVal(vol))
		tl.Add()
		ref.trades = append(ref.trades, tradeRow{acct, sec, d, vol})
	}
	tl.Close()

	sl, err := c.NewTableLoader("securities")
	if err != nil {
		t.Fatal(err)
	}
	const nSecs = 2000
	for i := 0; i < nSecs; i++ {
		r := sl.Row()
		acct := int64(rng.Intn(500))
		sec := int64(rng.Intn(50))
		d := day - int64(rng.Intn(3))
		vol := float64(rng.Intn(1000))
		types.PutValue(r, secs, 0, types.IntVal(acct))
		types.PutValue(r, secs, 1, types.IntVal(sec))
		types.PutValue(r, secs, 2, types.DateVal(d))
		types.PutValue(r, secs, 3, types.FloatVal(vol))
		sl.Add()
		ref.secs = append(ref.secs, tradeRow{acct, sec, d, vol})
	}
	sl.Close()
	return c, ref
}

type tradeRow struct {
	acct, sec, date int64
	vol             float64
}

type refData struct {
	trades []tradeRow
	secs   []tradeRow
}

func TestFilterQueryAllModes(t *testing.T) {
	day := types.MustParseDate("2010-10-30")
	for _, mode := range []Mode{EP, SP, ME} {
		c, ref := buildTestCluster(t, mode, 3)
		res, err := c.Run("SELECT * FROM trades WHERE trade_date = '2010-10-30'")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want := 0
		for _, r := range ref.trades {
			if r.date == day {
				want++
			}
		}
		if got := res.NumRows(); got != want {
			t.Fatalf("%v: rows = %d, want %d", mode, got, want)
		}
	}
}

func TestGroupByQueryAllModes(t *testing.T) {
	// SSE-Q7 shape: two-phase aggregation (trades partitioned on
	// sec_code, grouped by acct_id).
	for _, mode := range []Mode{EP, SP, ME} {
		c, ref := buildTestCluster(t, mode, 3)
		res, err := c.Run("SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want := map[int64]float64{}
		for _, r := range ref.trades {
			want[r.acct] += r.vol
		}
		if got := res.NumRows(); got != len(want) {
			t.Fatalf("%v: groups = %d, want %d", mode, got, len(want))
		}
		for _, row := range res.Rows() {
			if w := want[row[0].I]; row[1].F != w {
				t.Fatalf("%v: acct %d sum = %f, want %f", mode, row[0].I, row[1].F, w)
			}
		}
	}
}

func TestJoinAggQueryAllModes(t *testing.T) {
	// SSE-Q9: repartition join + two-phase aggregation — the paper's
	// flagship query (three segments, two pipelines).
	q := `SELECT sec_code, acct_id, sum(trade_volume), sum(entry_volume)
	      FROM Trades T, Securities S
	      WHERE T.trade_date = '2010-10-30' AND S.entry_date = '2010-10-30'
	      AND T.acct_id = S.acct_id
	      GROUP BY T.sec_code, S.acct_id`
	day := types.MustParseDate("2010-10-30")

	type key struct{ sec, acct int64 }
	var refAgg map[key][2]float64
	computeRef := func(ref *refData) {
		refAgg = map[key][2]float64{}
		for _, tr := range ref.trades {
			if tr.date != day {
				continue
			}
			for _, s := range ref.secs {
				if s.date != day || s.acct != tr.acct {
					continue
				}
				k := key{tr.sec, tr.acct}
				v := refAgg[k]
				v[0] += tr.vol
				v[1] += s.vol
				refAgg[k] = v
			}
		}
	}

	for _, mode := range []Mode{EP, SP, ME} {
		c, ref := buildTestCluster(t, mode, 3)
		computeRef(ref)
		res, err := c.Run(q)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := res.NumRows(); got != len(refAgg) {
			t.Fatalf("%v: groups = %d, want %d", mode, got, len(refAgg))
		}
		for _, row := range res.Rows() {
			k := key{row[0].I, row[1].I}
			w, ok := refAgg[k]
			if !ok {
				t.Fatalf("%v: unexpected group %+v", mode, k)
			}
			if row[2].F != w[0] || row[3].F != w[1] {
				t.Fatalf("%v: group %+v sums = (%f, %f), want (%f, %f)",
					mode, k, row[2].F, row[3].F, w[0], w[1])
			}
		}
	}
}

func TestScalarCountAllModes(t *testing.T) {
	// SSE-Q6 shape: scalar count over a repartition join.
	q := `SELECT count(*) FROM trades T, securities S
	      WHERE S.sec_code = 7 AND T.trade_date = '2010-10-30'
	      AND S.acct_id = T.acct_id`
	day := types.MustParseDate("2010-10-30")
	for _, mode := range []Mode{EP, SP, ME} {
		c, ref := buildTestCluster(t, mode, 2)
		want := int64(0)
		for _, tr := range ref.trades {
			if tr.date != day {
				continue
			}
			for _, s := range ref.secs {
				if s.sec == 7 && s.acct == tr.acct {
					want++
				}
			}
		}
		res, err := c.Run(q)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("%v: scalar agg returned %d rows", mode, res.NumRows())
		}
		if got := res.Rows()[0][0].I; got != want {
			t.Fatalf("%v: count = %d, want %d", mode, got, want)
		}
	}
}

func TestOrderByLimit(t *testing.T) {
	c, ref := buildTestCluster(t, EP, 3)
	res, err := c.Run(`SELECT acct_id, sum(trade_volume) AS vol FROM trades
		GROUP BY acct_id ORDER BY vol DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[int64]float64{}
	for _, r := range ref.trades {
		sums[r.acct] += r.vol
	}
	var vols []float64
	for _, v := range sums {
		vols = append(vols, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vols)))
	rows := res.Rows()
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for i, row := range rows {
		if row[1].F != vols[i] {
			t.Fatalf("rank %d: vol = %f, want %f", i, row[1].F, vols[i])
		}
	}
}

func TestOrderBySorted(t *testing.T) {
	c, _ := buildTestCluster(t, EP, 2)
	res, err := c.Run(`SELECT acct_id, sum(trade_volume) AS vol FROM trades
		GROUP BY acct_id ORDER BY acct_id`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].I > rows[i][0].I {
			t.Fatalf("result not sorted at %d", i)
		}
	}
}

func TestMEUsesMoreMemoryThanEP(t *testing.T) {
	// Table 4's qualitative claim: materialized execution stages whole
	// intermediate results, pipelined execution does not.
	q := `SELECT sec_code, acct_id, sum(trade_volume)
	      FROM Trades T, Securities S
	      WHERE T.acct_id = S.acct_id
	      GROUP BY T.sec_code, S.acct_id`
	cEP, _ := buildTestCluster(t, EP, 3)
	rEP, err := cEP.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	cME, _ := buildTestCluster(t, ME, 3)
	rME, err := cME.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if rME.Stats.PeakMemoryBytes <= rEP.Stats.PeakMemoryBytes {
		t.Fatalf("ME peak (%d) should exceed EP peak (%d)",
			rME.Stats.PeakMemoryBytes, rEP.Stats.PeakMemoryBytes)
	}
	if rEP.NumRows() != rME.NumRows() {
		t.Fatalf("EP and ME disagree: %d vs %d rows", rEP.NumRows(), rME.NumRows())
	}
}

func TestSingleNodeCluster(t *testing.T) {
	c, ref := buildTestCluster(t, EP, 1)
	res, err := c.Run("SELECT count(*) FROM trades")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows()[0][0].I; got != int64(len(ref.trades)) {
		t.Fatalf("count = %d, want %d", got, len(ref.trades))
	}
}

func TestSPWithHigherParallelism(t *testing.T) {
	cat := catalog.New(2)
	sch := types.NewSchema(types.Col("k", types.Int64), types.Col("v", types.Int64))
	cat.MustAdd(&catalog.Table{Name: "t", Schema: sch, PartKey: []int{0}})
	c := NewCluster(Config{Nodes: 2, CoresPerNode: 4, Mode: SP, FixedParallelism: 3,
		BlockSize: 1024}, cat)
	tl, _ := c.NewTableLoader("t")
	for i := 0; i < 5000; i++ {
		r := tl.Row()
		types.PutValue(r, sch, 0, types.IntVal(int64(i)))
		types.PutValue(r, sch, 1, types.IntVal(int64(i%7)))
		tl.Add()
	}
	tl.Close()
	res, err := c.Run("SELECT v, count(*) FROM t GROUP BY v")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 7 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	total := int64(0)
	for _, row := range res.Rows() {
		total += row[1].I
	}
	if total != 5000 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestNetworkBytesAccounted(t *testing.T) {
	c, _ := buildTestCluster(t, EP, 3)
	res, err := c.Run("SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NetworkBytes == 0 {
		t.Fatal("two-phase agg across 3 nodes must move bytes over the NIC")
	}
}

func TestEPProducesTrace(t *testing.T) {
	c, _ := buildTestCluster(t, EP, 2)
	res, err := c.Run(`SELECT sec_code, acct_id, sum(trade_volume)
		FROM Trades T, Securities S WHERE T.acct_id = S.acct_id
		GROUP BY T.sec_code, S.acct_id`)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// The trace may be empty for sub-25ms queries; just ensure the
	// field is usable.
	for _, s := range res.Stats.Trace {
		if len(s.Parallelism) == 0 {
			t.Fatal("trace sample without segments")
		}
	}
}

func TestResultRendering(t *testing.T) {
	c, _ := buildTestCluster(t, EP, 2)
	res, err := c.Run("SELECT acct_id, sum(trade_volume) AS vol FROM trades GROUP BY acct_id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 || res.Names[1] != "vol" {
		t.Fatalf("names = %v", res.Names)
	}
	if res.NumRows() != 5 {
		t.Fatalf("limit ignored: %d rows", res.NumRows())
	}
	for _, row := range res.Rows() {
		if len(row) != 2 {
			t.Fatal("row width mismatch")
		}
	}
	_ = fmt.Sprintf("%v", res.Rows())
}

func TestHavingClause(t *testing.T) {
	c, ref := buildTestCluster(t, EP, 2)
	res, err := c.Run(`SELECT acct_id, count(*) AS n FROM trades
		GROUP BY acct_id HAVING count(*) > 20`)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int64{}
	for _, r := range ref.trades {
		counts[r.acct]++
	}
	want := 0
	for _, n := range counts {
		if n > 20 {
			want++
		}
	}
	if got := res.NumRows(); got != want {
		t.Fatalf("HAVING groups = %d, want %d", got, want)
	}
	for _, row := range res.Rows() {
		if row[1].I <= 20 {
			t.Fatalf("group %d with count %d leaked through HAVING", row[0].I, row[1].I)
		}
	}
}

func TestDerivedTableEndToEnd(t *testing.T) {
	c, ref := buildTestCluster(t, EP, 2)
	res, err := c.Run(`SELECT count(*) FROM
		(SELECT acct_id a, sum(trade_volume) v FROM trades GROUP BY acct_id) agg
		WHERE v > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[int64]float64{}
	for _, r := range ref.trades {
		sums[r.acct] += r.vol
	}
	want := int64(0)
	for _, v := range sums {
		if v > 1000 {
			want++
		}
	}
	if got := res.Rows()[0][0].I; got != want {
		t.Fatalf("derived-table count = %d, want %d", got, want)
	}
}

func TestMinMaxAggregates(t *testing.T) {
	c, ref := buildTestCluster(t, SP, 2)
	res, err := c.Run(`SELECT min(trade_volume), max(trade_volume), avg(trade_volume)
		FROM trades`)
	if err != nil {
		t.Fatal(err)
	}
	mn, mx, sum := ref.trades[0].vol, ref.trades[0].vol, 0.0
	for _, r := range ref.trades {
		if r.vol < mn {
			mn = r.vol
		}
		if r.vol > mx {
			mx = r.vol
		}
		sum += r.vol
	}
	row := res.Rows()[0]
	if row[0].F != mn || row[1].F != mx {
		t.Fatalf("min/max = %f/%f, want %f/%f", row[0].F, row[1].F, mn, mx)
	}
	wantAvg := sum / float64(len(ref.trades))
	d := row[2].F - wantAvg
	if d < -1e-6 || d > 1e-6 {
		t.Fatalf("avg = %f, want %f", row[2].F, wantAvg)
	}
}

func TestDistributedAvgMatchesScalar(t *testing.T) {
	// avg over a two-phase (repartitioned) aggregation must equal the
	// scalar aggregate: the planner's sum/count split has to recombine.
	c, _ := buildTestCluster(t, EP, 3)
	per, err := c.Run(`SELECT acct_id, avg(trade_volume) FROM trades GROUP BY acct_id`)
	if err != nil {
		t.Fatal(err)
	}
	if per.NumRows() == 0 {
		t.Fatal("no groups")
	}
	for _, row := range per.Rows() {
		if row[1].Null {
			t.Fatalf("NULL avg for acct %d", row[0].I)
		}
	}
}

// TestTCPClusterEndToEnd runs a full SQL query over a cluster whose
// exchanges cross real loopback TCP sockets — every repartitioned block
// passes through the wire codec — and checks the result against the
// in-process cluster's.
func TestTCPClusterEndToEnd(t *testing.T) {
	q := `SELECT sec_code, acct_id, sum(trade_volume)
	      FROM Trades T, Securities S
	      WHERE T.acct_id = S.acct_id
	      GROUP BY T.sec_code, S.acct_id`

	inproc, _ := buildTestCluster(t, EP, 3)
	want, err := inproc.Run(q)
	if err != nil {
		t.Fatal(err)
	}

	cat := catalog.New(3)
	trades := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("trade_date", types.Date),
		types.Col("trade_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "trades", Schema: trades, PartKey: []int{1}})
	secs := types.NewSchema(
		types.Col("acct_id", types.Int64),
		types.Col("sec_code", types.Int64),
		types.Col("entry_date", types.Date),
		types.Col("entry_volume", types.Float64),
	)
	cat.MustAdd(&catalog.Table{Name: "securities", Schema: secs, PartKey: []int{0}})
	c, err := NewClusterTCP(Config{Nodes: 3, CoresPerNode: 2, Mode: EP,
		BlockSize: 2048, SchedTick: 5e6}, cat)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Identical data (same seed/shape as buildTestCluster).
	rng := rand.New(rand.NewSource(42))
	day := types.MustParseDate("2010-10-30")
	tl, _ := c.NewTableLoader("trades")
	for i := 0; i < 8000; i++ {
		r := tl.Row()
		types.PutValue(r, trades, 0, types.IntVal(int64(rng.Intn(500))))
		types.PutValue(r, trades, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, trades, 2, types.DateVal(day-int64(rng.Intn(5))))
		types.PutValue(r, trades, 3, types.FloatVal(float64(rng.Intn(1000))))
		tl.Add()
	}
	tl.Close()
	sl, _ := c.NewTableLoader("securities")
	for i := 0; i < 2000; i++ {
		r := sl.Row()
		types.PutValue(r, secs, 0, types.IntVal(int64(rng.Intn(500))))
		types.PutValue(r, secs, 1, types.IntVal(int64(rng.Intn(50))))
		types.PutValue(r, secs, 2, types.DateVal(day-int64(rng.Intn(3))))
		types.PutValue(r, secs, 3, types.FloatVal(float64(rng.Intn(1000))))
		sl.Add()
	}
	sl.Close()

	got, err := c.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("TCP cluster rows = %d, in-proc = %d", got.NumRows(), want.NumRows())
	}
	if fingerprint(got) != fingerprint(want) {
		t.Fatal("TCP and in-process clusters disagree on the result set")
	}
	if got.Stats.NetworkBytes == 0 {
		t.Fatal("TCP egress bytes not accounted")
	}
}

// Error paths must surface cleanly, not hang the cluster.
func TestQueryErrorPaths(t *testing.T) {
	c, _ := buildTestCluster(t, EP, 2)
	for _, q := range []string{
		"SELECT * FROM missing_table",
		"SELECT nope FROM trades",
		"SELECT * FROM trades WHERE",
		"SELECT acct_id FROM trades GROUP BY",
		"SELECT * FROM trades, securities", // cross join unsupported
	} {
		if _, err := c.Run(q); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
	// The cluster must stay usable after failed queries.
	if _, err := c.Run("SELECT count(*) FROM trades"); err != nil {
		t.Fatalf("cluster wedged after error paths: %v", err)
	}
}

// Tiny exchange buffers must not deadlock any mode (backpressure
// propagates through senders, elastic buffers and workers).
func TestTinyExchangeBuffersNoDeadlock(t *testing.T) {
	for _, mode := range []Mode{EP, SP} {
		cat := catalog.New(2)
		sch := types.NewSchema(types.Col("k", types.Int64), types.Col("v", types.Int64))
		cat.MustAdd(&catalog.Table{Name: "t", Schema: sch, PartKey: []int{0}})
		c := NewCluster(Config{Nodes: 2, CoresPerNode: 2, Mode: mode,
			BlockSize: 512, ExchangeBuffer: 1, FixedParallelism: 2}, cat)
		tl, _ := c.NewTableLoader("t")
		for i := 0; i < 20000; i++ {
			r := tl.Row()
			types.PutValue(r, sch, 0, types.IntVal(int64(i)))
			types.PutValue(r, sch, 1, types.IntVal(int64(i%11)))
			tl.Add()
		}
		tl.Close()
		res, err := c.Run("SELECT v, count(*) FROM t GROUP BY v")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.NumRows() != 11 {
			t.Fatalf("%v: groups = %d", mode, res.NumRows())
		}
	}
}
