package engine

import "sync"

// coreLease is one node's core-slot pool. Every worker the engine
// starts on the node holds a lease on a concrete core id; leases are
// shared across all concurrent queries, so the sum of leased slots can
// never exceed CoresPerNode — the per-node budget m of Section 4 —
// no matter how many queries are in flight.
//
// When every slot is leased the pool does not refuse outright: a
// segment's first worker must always start or the dataflow would never
// reach end-of-flow (liveness). Instead AcquireOversub hands out the
// least-loaded core id and accounts the overdraft explicitly, so
// oversubscription is visible (Oversubscribed) rather than silent — the
// failure mode of the old per-query `% CoresPerNode` wrap, which let
// two queries pin workers to the same core with no record of it.
type coreLease struct {
	mu sync.Mutex
	// free is a LIFO of unleased core ids: recently vacated cores are
	// re-handed first (warm caches on a real machine; determinism here).
	free []int
	// oversub counts extra (beyond the lease) workers per core id.
	oversub []int
	// over is the total outstanding oversubscribed workers.
	over int
	cap_ int
}

func newCoreLease(cores int) *coreLease {
	l := &coreLease{
		free:    make([]int, cores),
		oversub: make([]int, cores),
		cap_:    cores,
	}
	for i := range l.free {
		l.free[i] = cores - 1 - i // pop order: core 0 first
	}
	return l
}

// Acquire leases a free core slot, returning (core, true), or (-1,
// false) when the node is fully booked.
func (l *coreLease) Acquire() (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.free); n > 0 {
		c := l.free[n-1]
		l.free = l.free[:n-1]
		return c, true
	}
	return -1, false
}

// AcquireOversub hands out the least-loaded core id without a lease,
// recording the overdraft. Used only when Acquire failed and the caller
// must start a worker anyway (a segment's first worker).
func (l *coreLease) AcquireOversub() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	best := 0
	for c := 1; c < l.cap_; c++ {
		if l.oversub[c] < l.oversub[best] {
			best = c
		}
	}
	l.oversub[best]++
	l.over++
	return best
}

// Release returns a worker's core slot. Oversubscribed workers on the
// core settle their overdraft first; only then does the underlying
// lease return to the free list.
func (l *coreLease) Release(core int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if core < 0 || core >= l.cap_ {
		return
	}
	if l.oversub[core] > 0 {
		l.oversub[core]--
		l.over--
		return
	}
	l.free = append(l.free, core)
}

// Used returns the number of leased (non-oversubscribed) core slots.
func (l *coreLease) Used() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cap_ - len(l.free)
}

// Oversubscribed returns the outstanding overdraft: workers running
// beyond the node's core budget.
func (l *coreLease) Oversubscribed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.over
}
